"""Device model tests (Table 3 and dataset scaling)."""

import pytest

from repro.gpu.device import (
    DATASET_SCALE,
    TITAN_RTX,
    TITAN_RTX_SCALED,
    TITAN_X,
    TITAN_X_SCALED,
    known_devices,
)


class TestTable3Specs:
    def test_titan_x_row(self):
        assert TITAN_X.cuda_cores == 3072
        assert TITAN_X.clock_mhz == 1075.0
        assert TITAN_X.mem_bandwidth_gbps == 336.5
        assert TITAN_X.dram_bytes == 12 * 1024**3
        assert TITAN_X.arch == "Pascal"

    def test_titan_rtx_row(self):
        assert TITAN_RTX.cuda_cores == 4608
        assert TITAN_RTX.clock_mhz == 1770.0
        assert TITAN_RTX.mem_bandwidth_gbps == 672.0
        assert TITAN_RTX.dram_bytes == 24 * 1024**3
        assert TITAN_RTX.arch == "Turing"

    def test_derived_quantities(self):
        assert TITAN_RTX.peak_flops == pytest.approx(4608 * 1770e6 * 2)
        assert TITAN_RTX.bandwidth_bytes == pytest.approx(672e9)
        assert TITAN_X.max_resident_warps == 24 * 64
        assert TITAN_RTX.max_resident_warps == 72 * 32

    def test_rtx_faster_than_x(self):
        assert TITAN_RTX.peak_flops > TITAN_X.peak_flops
        assert TITAN_RTX.bandwidth_bytes > TITAN_X.bandwidth_bytes


class TestScaling:
    def test_capacity_quantities_scale(self):
        s = TITAN_RTX.scaled(50)
        assert s.cuda_cores == pytest.approx(4608 / 50, rel=0.2)
        assert s.mem_bandwidth_gbps == pytest.approx(672 / 50)
        assert s.l2_bytes == pytest.approx(TITAN_RTX.l2_bytes / 50, rel=0.01)
        assert s.max_resident_warps == pytest.approx(2304 / 50, rel=0.2)

    def test_physical_quantities_fixed(self):
        s = TITAN_X.scaled(50)
        assert s.clock_mhz == TITAN_X.clock_mhz
        assert s.warp_size == TITAN_X.warp_size
        assert s.launch_overhead_s == TITAN_X.launch_overhead_s
        assert s.dram_latency_s == TITAN_X.dram_latency_s
        assert s.sector_bytes == TITAN_X.sector_bytes

    def test_scaled_ratio_preserved(self):
        """RTX:X capability ratios survive scaling."""
        rx, x = TITAN_RTX.scaled(50), TITAN_X.scaled(50)
        assert rx.bandwidth_bytes / x.bandwidth_bytes == pytest.approx(
            TITAN_RTX.bandwidth_bytes / TITAN_X.bandwidth_bytes
        )

    def test_shipped_scaled_devices(self):
        assert "1/50" in TITAN_RTX_SCALED.name
        assert TITAN_X_SCALED.cuda_cores < TITAN_X.cuda_cores
        assert DATASET_SCALE == 50.0

    def test_known_devices_registry(self):
        devs = known_devices()
        assert set(devs) == {
            "titan_x",
            "titan_rtx",
            "titan_x_scaled",
            "titan_rtx_scaled",
        }

    def test_scaling_floors(self):
        tiny = TITAN_X.scaled(1e9)
        assert tiny.cuda_cores >= 32
        assert tiny.sm_count >= 1
        assert tiny.max_resident_warps >= 8

"""Tests for the disk-backed plan store (repro.serve.store).

The contract under test: a populated store lets a *fresh* service reach
steady state with zero full pattern builds and bit-identical solutions,
while every corruption mode — truncation, checksum damage, version
drift, stale fingerprints — degrades to a counted cold build, never an
exception to the caller.
"""

from __future__ import annotations

import json
import struct
import threading

import numpy as np
import pytest

from conftest import random_lower
from repro.obs import Observability
from repro.serve import PlanStore, ServiceConfig, SolveService
from repro.serve.cache import PlanCache
from repro.serve.store import (
    FORMAT_VERSION,
    MAGIC,
    StoreCorruptError,
    StoreMismatchError,
    decode_entry,
    encode_entry,
    read_header,
)


def _solve_all(svc, mats):
    return [svc.solve(A, np.ones(A.n_rows)).x for A in mats]


def _warm_store(path, mats, **cfg):
    """Populate a store by running every matrix through a service."""
    with SolveService(ServiceConfig(store_path=str(path), **cfg)) as svc:
        xs = _solve_all(svc, mats)
    return xs


class TestEntryFormat:
    def test_round_trip(self):
        header = {"kind": "pattern", "structure_fp": "abc"}
        payload = {"x": np.arange(5), "y": "data"}
        blob = encode_entry(header, payload)
        got_header, got_payload = decode_entry(blob)
        assert got_header["structure_fp"] == "abc"
        assert got_header["format_version"] == FORMAT_VERSION
        assert np.array_equal(got_payload["x"], np.arange(5))

    def test_expect_mismatch(self):
        blob = encode_entry({"structure_fp": "abc"}, {})
        with pytest.raises(StoreMismatchError):
            decode_entry(blob, expect={"structure_fp": "other"})

    def test_truncation_detected(self):
        blob = encode_entry({"k": 1}, {"v": list(range(100))})
        for cut in (2, len(MAGIC) + 2, len(blob) // 2, len(blob) - 1):
            with pytest.raises(StoreCorruptError):
                read_header(blob[:cut])

    def test_checksum_damage_detected(self):
        blob = bytearray(encode_entry({"k": 1}, {"v": list(range(100))}))
        blob[-1] ^= 0xFF  # flip a payload byte; header still parses
        read_header(bytes(blob))
        with pytest.raises(StoreCorruptError):
            decode_entry(bytes(blob))

    def test_bad_magic_detected(self):
        blob = b"XXXX" + encode_entry({}, {})[4:]
        with pytest.raises(StoreCorruptError):
            read_header(blob)


def _rewrite_header(blob: bytes, **patch) -> bytes:
    """Patch header fields and re-frame (checksum left valid)."""
    hlen = struct.unpack_from("<I", blob, len(MAGIC))[0]
    start = len(MAGIC) + 4
    header = json.loads(blob[start : start + hlen].decode())
    header.update(patch)
    hj = json.dumps(header, sort_keys=True).encode()
    return MAGIC + struct.pack("<I", len(hj)) + hj + blob[start + hlen :]


class TestCorruptionDegradesToMiss:
    """Every damaged/stale entry is a counted miss, never an exception."""

    @pytest.fixture
    def warm(self, tmp_path):
        mats = [random_lower(120, density=0.06, seed=7)]
        xs = _warm_store(tmp_path, mats)
        store = PlanStore(tmp_path)
        (entry,) = [p for p in store.path.glob("*.plan")]
        store.close()
        return tmp_path, mats, xs, entry

    def _assert_cold_rebuild(self, path, mats, xs, *, corrupt=0, mismatched=0):
        with SolveService(ServiceConfig(store_path=str(path))) as svc:
            got = _solve_all(svc, mats)
            stats = svc.stats()
        assert stats.completed == len(mats)
        assert stats.failed == 0
        assert stats.pattern_builds == len(mats)  # degraded to cold build
        assert stats.store_hits == 0
        assert stats.store.hits == 0
        assert stats.store.corrupt == corrupt
        assert stats.store.mismatched == mismatched
        for a, b in zip(xs, got):
            assert np.array_equal(a, b)

    def test_truncated_payload(self, warm):
        path, mats, xs, entry = warm
        entry.write_bytes(entry.read_bytes()[:-20])
        self._assert_cold_rebuild(path, mats, xs, corrupt=1)

    def test_bad_checksum(self, warm):
        path, mats, xs, entry = warm
        blob = bytearray(entry.read_bytes())
        blob[-5] ^= 0x55
        entry.write_bytes(bytes(blob))
        self._assert_cold_rebuild(path, mats, xs, corrupt=1)

    def test_format_version_mismatch(self, warm):
        path, mats, xs, entry = warm
        entry.write_bytes(
            _rewrite_header(entry.read_bytes(), format_version=FORMAT_VERSION + 1)
        )
        self._assert_cold_rebuild(path, mats, xs, mismatched=1)

    def test_library_version_mismatch(self, warm):
        path, mats, xs, entry = warm
        entry.write_bytes(
            _rewrite_header(entry.read_bytes(), library_version="0.0.0")
        )
        self._assert_cold_rebuild(path, mats, xs, mismatched=1)

    def test_stale_structure_fingerprint(self, warm):
        path, mats, xs, entry = warm
        entry.write_bytes(
            _rewrite_header(entry.read_bytes(), structure_fp="0" * 32)
        )
        self._assert_cold_rebuild(path, mats, xs, mismatched=1)

    def test_corrupt_entry_quarantined(self, warm):
        path, mats, _, entry = warm
        entry.write_bytes(b"garbage")
        store = PlanStore(path)
        assert store.get(("any",)) is None
        with SolveService(ServiceConfig(store=store)) as svc:
            _solve_all(svc, mats)
        # the damaged file was removed; the rebuild wrote a clean one
        store.flush()
        rows = store.ls()
        assert all("corrupt" not in r for r in rows)
        store.close()


class TestWarmRestart:
    def test_zero_pattern_builds_and_bit_identity(self, tmp_path):
        mats = [
            random_lower(150, density=0.05, seed=s) for s in (1, 2, 3)
        ]
        xs1 = _warm_store(tmp_path, mats)
        with SolveService(ServiceConfig(store_path=str(tmp_path))) as svc:
            xs2 = _solve_all(svc, mats)
            stats = svc.stats()
        assert stats.pattern_builds == 0
        assert stats.store_hits == len(mats)
        assert stats.store.hits == len(mats)
        assert stats.store.misses == 0
        for a, b in zip(xs1, xs2):
            assert np.array_equal(a, b)

    def test_upper_triangular_round_trip(self, tmp_path):
        L = random_lower(90, density=0.08, seed=11)
        U = L.transpose().sort_indices()
        b = np.linspace(0.5, 1.5, U.n_rows)
        with SolveService(ServiceConfig(store_path=str(tmp_path))) as svc:
            x1 = svc.solve(U, b).x
        with SolveService(ServiceConfig(store_path=str(tmp_path))) as svc:
            r = svc.submit(U, b).result()[0]
            stats = svc.stats()
        assert stats.pattern_builds == 0
        assert np.array_equal(x1, r.x)
        assert np.abs(U.matvec(r.x) - b).max() < 1e-8

    def test_dist_schedule_persists(self, tmp_path):
        mats = [random_lower(200, density=0.04, seed=21)]
        xs1 = _warm_store(tmp_path, mats, n_devices=3)
        with SolveService(
            ServiceConfig(store_path=str(tmp_path), n_devices=3)
        ) as svc:
            xs2 = _solve_all(svc, mats)
            stats = svc.stats()
        assert stats.pattern_builds == 0
        assert np.array_equal(xs1[0], xs2[0])

    def test_values_rebind_on_load(self, tmp_path):
        """A warm start rebinds *new* values onto the loaded pattern."""
        L = random_lower(130, density=0.06, seed=5)
        _warm_store(tmp_path, [L])
        L2 = L.copy()
        L2.data *= 1.5
        b = np.ones(L.n_rows)
        with SolveService(ServiceConfig(store_path=str(tmp_path))) as svc:
            x = svc.solve(L2, b).x
            stats = svc.stats()
        assert stats.pattern_builds == 0  # same structure: loaded, rebound
        assert np.abs(L2.matvec(x) - b).max() < 1e-8

    def test_shared_store_instance_and_obs_metrics(self, tmp_path):
        obs = Observability()
        store = PlanStore(tmp_path)
        L = random_lower(100, density=0.06, seed=8)
        b = np.ones(L.n_rows)
        with SolveService(ServiceConfig(store=store, obs=obs)) as svc:
            svc.solve(L, b)
        with SolveService(ServiceConfig(store=store, obs=obs)) as svc:
            svc.solve(L, b)
        m = obs.serve_metrics
        assert m.store_lookups.value(result="miss") == 1
        assert m.store_lookups.value(result="hit") == 1
        assert m.store_writes.total() == 1
        store.close()
        assert store.stats().writes == 1


class TestStoreMaintenance:
    def test_ls_and_gc(self, tmp_path):
        mats = [random_lower(80, density=0.08, seed=s) for s in (31, 32)]
        _warm_store(tmp_path, mats)
        store = PlanStore(tmp_path)
        rows = store.ls()
        assert len(rows) == 2
        assert all(r["header"]["kind"] == "pattern" for r in rows)
        # damage one entry; gc removes exactly it
        files = sorted(store.path.glob("*.plan"))
        files[0].write_bytes(b"not a store entry")
        summary = store.gc()
        assert summary["removed"] == 1
        assert summary["reasons"] == {"corrupt": 1}
        assert len(store) == 1
        # size pruning drops the remaining (oldest) entry
        summary = store.gc(max_bytes=0)
        assert summary["removed"] == 1
        assert len(store) == 0
        store.close()

    def test_gc_drops_stale_versions(self, tmp_path):
        _warm_store(tmp_path, [random_lower(80, density=0.08, seed=41)])
        store = PlanStore(tmp_path)
        (entry,) = store.path.glob("*.plan")
        entry.write_bytes(
            _rewrite_header(entry.read_bytes(), library_version="0.0.1")
        )
        assert store.gc(drop_stale_versions=False)["removed"] == 0
        assert store.gc()["reasons"] == {"version": 1}
        store.close()

    def test_overlay_evictions_counted(self, tmp_path):
        obs = Observability()
        L = random_lower(110, density=0.06, seed=51)
        cfg = ServiceConfig(overlay_capacity=1, obs=obs)
        with SolveService(cfg) as svc:
            b = np.ones(L.n_rows)
            for k in range(4):  # 4 distinct values vectors, capacity 1
                Lk = type(L)(
                    L.n_rows, L.n_cols, L.indptr.copy(), L.indices.copy(),
                    L.data * (1.0 + k),
                )
                svc.solve(Lk, b)
            stats = svc.stats()
        assert stats.overlay_evictions == 3
        assert obs.serve_metrics.overlay_evictions.total() == 3


class TestPlanCacheSingleFlight:
    def test_failing_then_succeeding_builder_builds_once(self):
        """Regression: after a failing builder released the key lock, the
        old code dropped the per-key lock entry while waiters were still
        queued on it, letting several threads rebuild concurrently."""
        cache = PlanCache(capacity=4)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        build_calls = []
        in_flight = []
        max_in_flight = []
        lock = threading.Lock()

        def builder():
            with lock:
                in_flight.append(1)
                max_in_flight.append(len(in_flight))
                build_calls.append(1)
                first = len(build_calls) == 1
            try:
                import time

                time.sleep(0.02)  # widen the race window
                if first:
                    raise RuntimeError("transient planner failure")
                return "plan"
            finally:
                with lock:
                    in_flight.pop()

        results = []
        errors = []

        def worker():
            barrier.wait()
            try:
                results.append(cache.get_or_build("k", builder))
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # exactly one failure surfaced, exactly one successful rebuild,
        # and no two builders ever ran concurrently for the same key
        assert len(errors) == 1
        assert len(build_calls) == 2
        assert max(max_in_flight) == 1
        assert all(v == "plan" for v, _ in results)
        assert len(results) == n_threads - 1
        # the refcounted lock entry is reclaimed once everyone is done
        assert cache._key_locks == {}

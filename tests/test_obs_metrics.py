"""Metrics registry and exporters, including a minimal independent
Prometheus text-format parser that keeps the exposition honest."""

from __future__ import annotations

import re
import threading

import pytest

from repro.errors import DuplicateMetricError
from repro.obs import MetricsRegistry, to_prometheus
from repro.obs.export import metrics_to_dict


def test_counter_basics_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", "hits", labelnames=("result",))
    c.inc(result="hit")
    c.inc(2, result="miss")
    assert c.value(result="hit") == 1.0
    assert c.value(result="miss") == 2.0
    assert c.value(result="other") == 0.0
    assert c.total() == 3.0
    with pytest.raises(ValueError):
        c.inc(-1, result="hit")
    with pytest.raises(ValueError):
        c.inc(result="hit", extra="x")
    with pytest.raises(ValueError):
        c.inc()  # missing the declared label


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(5)
    g.inc(-2)
    assert g.value() == 3.0


def test_histogram_cumulative_bucket_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.1, 0.5, 2.0, 100.0):
        h.observe(v)
    snap = h.snapshot()
    # le is inclusive: 0.1 falls in the 0.1 bucket, not the next one.
    assert snap["buckets"][0.1] == 2
    assert snap["buckets"][1.0] == 3
    assert snap["buckets"][10.0] == 4
    assert snap["buckets"][float("inf")] == 5
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(102.65)


def test_duplicate_registration_raises():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(DuplicateMetricError):
        reg.counter("x_total")
    with pytest.raises(DuplicateMetricError):
        reg.gauge("x_total")  # across kinds too
    assert len(reg) == 1 and "x_total" in reg


def test_registries_are_isolated():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n_total").inc()
    assert "n_total" not in b
    b.counter("n_total")  # no duplicate error across registries
    assert b.get("n_total").total() == 0.0


def test_concurrent_increments_do_not_lose_updates():
    reg = MetricsRegistry()
    c = reg.counter("n_total", labelnames=("w",))
    h = reg.histogram("lat", buckets=(0.5,))

    def work(w: int) -> None:
        for _ in range(1000):
            c.inc(w=w % 2)
            h.observe(0.1)

    threads = [threading.Thread(target=work, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == 8000
    assert h.snapshot()["count"] == 8000


# --------------------------------------------------------------------- #
# A deliberately independent parser for the text exposition format.
# --------------------------------------------------------------------- #

_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r' (?P<value>[^ ]+)'
    # OpenMetrics exemplar suffix: ` # {label="..."} value`
    r'(?: # \{(?P<exlabels>[^}]*)\} (?P<exvalue>[^ ]+))?$'
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict:
    """{family: {"type": str, "help": str, "samples": {(name, labels): float},
    "exemplars": {(name, labels): (labels, float)}}}"""
    families: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_ = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": "", "samples": {},
                       "exemplars": {}}
            )["help"] = help_
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"type": None, "help": "", "samples": {},
                       "exemplars": {}}
            )["type"] = kind
        elif line.startswith("#"):
            continue
        else:
            m = _SAMPLE_RE.match(line)
            assert m, f"unparseable sample line: {line!r}"
            labels = tuple(sorted(_LABEL_RE.findall(m.group("labels") or "")))
            value = float(m.group("value").replace("+Inf", "inf"))
            base = m.group("name")
            family = re.sub(r"_(bucket|sum|count)$", "", base)
            key = base if base in families else family
            assert key in families, f"sample {base} without TYPE header"
            families[key]["samples"][(base, labels)] = value
            if m.group("exvalue") is not None:
                assert base.endswith("_bucket"), \
                    f"exemplar on non-bucket sample: {line!r}"
                families[key]["exemplars"][(base, labels)] = (
                    tuple(sorted(_LABEL_RE.findall(m.group("exlabels")))),
                    float(m.group("exvalue")),
                )
    return families


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_hits_total", "cache hits", labelnames=("result",))
    c.inc(3, result="hit")
    c.inc(result='we"ird\\label\nvalue')
    g = reg.gauge("repro_depth", "plan depth")
    g.set(4)
    h = reg.histogram("repro_latency_seconds", "latency",
                      buckets=(0.001, 0.1))
    h.observe(0.0005)
    h.observe(0.05)
    h.observe(5.0)
    reg.counter("repro_empty_total", "never incremented")
    return reg


def test_prometheus_roundtrip_through_independent_parser():
    reg = _populated_registry()
    fams = parse_prometheus(to_prometheus(reg))

    hits = fams["repro_hits_total"]
    assert hits["type"] == "counter"
    assert hits["help"] == "cache hits"
    assert hits["samples"][
        ("repro_hits_total", (("result", "hit"),))
    ] == 3.0

    assert fams["repro_depth"]["type"] == "gauge"
    assert fams["repro_depth"]["samples"][("repro_depth", ())] == 4.0

    lat = fams["repro_latency_seconds"]
    assert lat["type"] == "histogram"
    s = lat["samples"]
    assert s[("repro_latency_seconds_bucket", (("le", "0.001"),))] == 1
    assert s[("repro_latency_seconds_bucket", (("le", "0.1"),))] == 2
    assert s[("repro_latency_seconds_bucket", (("le", "+Inf"),))] == 3
    assert s[("repro_latency_seconds_count", ())] == 3
    assert s[("repro_latency_seconds_sum", ())] == pytest.approx(5.0505)

    # An unlabelled, never-touched family still exposes one zero sample.
    assert fams["repro_empty_total"]["samples"][
        ("repro_empty_total", ())
    ] == 0.0


def test_prometheus_escapes_label_values():
    reg = _populated_registry()
    text = to_prometheus(reg)
    assert r'result="we\"ird\\label\nvalue"' in text
    # No family header appears twice (the duplicate-registration guard
    # is what makes this impossible; CI greps for the same invariant).
    headers = [l for l in text.splitlines() if l.startswith("# TYPE")]
    assert len(headers) == len(set(headers))


def test_metrics_to_dict_matches_registry():
    reg = _populated_registry()
    d = metrics_to_dict(reg)
    assert d["repro_hits_total"]["kind"] == "counter"
    hit = [s for s in d["repro_hits_total"]["samples"]
           if s["labels"] == {"result": "hit"}]
    assert hit[0]["value"] == 3.0
    series = d["repro_latency_seconds"]["series"][0]
    assert series["count"] == 3
    assert series["buckets"]["+Inf"] == 3


def test_prometheus_escapes_help_but_not_quotes():
    reg = MetricsRegistry()
    reg.counter("h_total", 'say "hi"\nwith\\slash')
    text = to_prometheus(reg)
    # Backslash and newline are escaped in HELP; the quote is legal.
    assert '# HELP h_total say "hi"\\nwith\\\\slash' in text
    parse_prometheus(text)  # and the whole thing still parses


def test_histogram_exemplars_retained_per_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "latency", buckets=(0.001, 0.1))
    h.observe(0.0005, exemplar=11)
    h.observe(0.05, exemplar=12)
    h.observe(0.06, exemplar=13)  # same bucket: last write wins
    h.observe(5.0)                # no exemplar for the overflow bucket
    ex = h.exemplars()
    assert ex[0.001] == {"exemplar": "11", "value": 0.0005}
    assert ex[0.1] == {"exemplar": "13", "value": 0.06}
    assert float("inf") not in ex

    fams = parse_prometheus(to_prometheus(reg))
    exemplars = fams["lat_seconds"]["exemplars"]
    assert exemplars[
        ("lat_seconds_bucket", (("le", "0.001"),))
    ] == ((("trace_id", "11"),), 0.0005)
    assert exemplars[
        ("lat_seconds_bucket", (("le", "0.1"),))
    ] == ((("trace_id", "13"),), 0.06)
    assert ("lat_seconds_bucket", (("le", "+Inf"),)) not in exemplars

    # Strict 0.0.4 consumers can turn the suffix off.
    assert " # {" not in to_prometheus(reg, exemplars=False)

    # The JSON exporter carries the same exemplars.
    d = metrics_to_dict(reg)
    series = d["lat_seconds"]["series"][0]
    assert series["exemplars"]["0.001"] == {"exemplar": "11", "value": 0.0005}


def test_unobserved_unlabelled_histogram_exposes_zero_ladder():
    reg = MetricsRegistry()
    reg.histogram("cold_seconds", "never observed", buckets=(0.5, 1.0))
    fams = parse_prometheus(to_prometheus(reg))
    s = fams["cold_seconds"]["samples"]
    assert s[("cold_seconds_bucket", (("le", "0.5"),))] == 0
    assert s[("cold_seconds_bucket", (("le", "1.0"),))] == 0
    assert s[("cold_seconds_bucket", (("le", "+Inf"),))] == 0
    assert s[("cold_seconds_count", ())] == 0
    assert s[("cold_seconds_sum", ())] == 0.0


def test_every_histogram_series_has_inf_sum_and_count():
    reg = MetricsRegistry()
    h = reg.histogram("l_seconds", "labelled", labelnames=("tenant",),
                      buckets=(0.1,))
    h.observe(0.05, tenant="a")
    h.observe(3.0, tenant="b")
    fams = parse_prometheus(to_prometheus(reg))
    s = fams["l_seconds"]["samples"]
    for tenant in ("a", "b"):
        labels = (("tenant", tenant),)
        assert ("l_seconds_bucket", tuple(sorted(labels + (("le", "+Inf"),)))) in s
        assert ("l_seconds_sum", labels) in s
        assert ("l_seconds_count", labels) in s


def test_micro_bucket_preset_resolves_microseconds():
    from repro.obs import DEFAULT_TIME_BUCKETS, MICRO_TIME_BUCKETS

    reg = MetricsRegistry()
    h = reg.histogram("sim_seconds", "sim", buckets=MICRO_TIME_BUCKETS)
    # Two latencies one decade apart in the µs range land in distinct
    # buckets under the micro preset...
    h.observe(2e-6)
    h.observe(4e-6)
    snap = h.snapshot()
    assert snap["buckets"][2.5e-6] == 1
    assert snap["buckets"][5e-6] == 2
    # ...where the wall-clock preset has at most two bounds per decade.
    per_decade = sum(1 for b in DEFAULT_TIME_BUCKETS if 1e-6 <= b <= 1e-5)
    assert per_decade <= 3 < sum(
        1 for b in MICRO_TIME_BUCKETS if 1e-6 <= b <= 1e-5
    )

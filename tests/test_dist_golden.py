"""Golden-schedule regression tests.

Every scheduler is a deterministic function of (plan, simulated costs,
n_devices, interconnect, sync mode), and every input is itself
deterministic — suite matrices are seeded and costs are simulated,
never wall-clock.  So whole schedules can be pinned *per policy*:
assignment, execution order, and the transfer list must match the
committed fixture exactly, and the simulated timeline to
float-roundtrip tolerance.  Two suite matrices carry one fixture per
registered built-in scheduler at 4 devices, so a placement-policy
change cannot hide inside the aggregate makespan.

Regenerate deliberately after a scheduler/cost-model change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_dist_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.solver import SOLVERS
from repro.dist import DistributedPlan
from repro.gpu.device import TITAN_RTX_SCALED
from repro.matrices.suite import scaled_suite

DATA_DIR = Path(__file__).parent / "data"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))
TIME_RTOL = 1e-9

#: fixture name -> (suite matrix, method, options, n_devices,
#:                  scheduler, sync)
GOLDEN_CASES = {
    "dist_schedule_kkt_mid_a_cb16_d4": (
        "kkt_mid_a", "column-block", {"nseg": 16}, 4, "eft", "p2p",
    ),
    "dist_schedule_ilu_130x110_rb3_d2": (
        "ilu_factor_130x110", "recursive-block", {"depth": 3}, 2,
        "eft", "p2p",
    ),
    "dist_schedule_banded_64_0_row8_d3": (
        "banded_64_0", "row-block", {"nseg": 8}, 3, "eft", "p2p",
    ),
    # Per-scheduler pinning: the same two plans at 4 devices under
    # every built-in placement policy (superstep under its natural
    # barrier sync, the EFT family under p2p).
    "dist_schedule_kkt_mid_a_cb16_d4_lookahead": (
        "kkt_mid_a", "column-block", {"nseg": 16}, 4,
        "lookahead-eft", "p2p",
    ),
    "dist_schedule_kkt_mid_a_cb16_d4_superstep": (
        "kkt_mid_a", "column-block", {"nseg": 16}, 4,
        "superstep", "barrier",
    ),
    "dist_schedule_banded_64_0_row8_d4_eft": (
        "banded_64_0", "row-block", {"nseg": 8}, 4, "eft", "p2p",
    ),
    "dist_schedule_banded_64_0_row8_d4_lookahead": (
        "banded_64_0", "row-block", {"nseg": 8}, 4,
        "lookahead-eft", "p2p",
    ),
    "dist_schedule_banded_64_0_row8_d4_superstep": (
        "banded_64_0", "row-block", {"nseg": 8}, 4,
        "superstep", "barrier",
    ),
}


def _build_schedule(matrix, method, options, n_devices, scheduler, sync):
    spec = {s.name: s for s in scaled_suite(0.05)}[matrix]
    prepared = SOLVERS[method](device=TITAN_RTX_SCALED, **options).prepare(
        spec.build()
    )
    return DistributedPlan.from_prepared(
        prepared, n_devices, scheduler=scheduler, sync=sync
    ).schedule


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_schedule_matches_golden_fixture(name):
    sched = _build_schedule(*GOLDEN_CASES[name])
    got = sched.as_dict()
    path = DATA_DIR / f"{name}.json"
    if REGEN or not path.exists():
        DATA_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2) + "\n")
        pytest.skip(f"regenerated {path.name}")
    want = json.loads(path.read_text())

    # Discrete structure must match exactly.
    for key in ("method", "scheduler", "sync", "n_devices", "assignment",
                "order", "x_transfer_items", "b_transfer_items"):
        assert got[key] == want[key], key
    got_t = [
        {k: t[k] for k in ("producer", "consumer", "src", "dst",
                           "x_items", "b_items")}
        for t in got["transfers"]
    ]
    want_t = [
        {k: t[k] for k in ("producer", "consumer", "src", "dst",
                           "x_items", "b_items")}
        for t in want["transfers"]
    ]
    assert got_t == want_t

    # Simulated times to float-text roundtrip tolerance.
    for key in ("costs_s", "start_s", "finish_s", "device_busy_s"):
        assert got[key] == pytest.approx(want[key], rel=TIME_RTOL), key
    for key in ("makespan_s", "critical_path_s"):
        assert got[key] == pytest.approx(want[key], rel=TIME_RTOL), key
    for t_got, t_want in zip(got["transfers"], want["transfers"]):
        assert t_got["start_s"] == pytest.approx(
            t_want["start_s"], rel=TIME_RTOL
        )
        assert t_got["end_s"] == pytest.approx(
            t_want["end_s"], rel=TIME_RTOL
        )


def test_golden_fixtures_are_committed():
    """Guard against the skip-on-first-run path silently shipping no
    fixtures: every golden case must have a JSON file in tests/data/."""
    missing = [
        name for name in GOLDEN_CASES
        if not (DATA_DIR / f"{name}.json").exists()
    ]
    assert not missing, f"run REPRO_REGEN_GOLDEN=1 to create {missing}"

"""Permutation and level-set reordering tests (§3.3)."""

import numpy as np

from repro.formats.triangular import is_lower_triangular
from repro.graph import (
    compose_permutations,
    compute_levels,
    identity_permutation,
    invert_permutation,
    levelset_permutation,
)
from repro.graph.reorder import is_permutation

from conftest import random_lower


class TestPermutationBasics:
    def test_identity(self):
        assert identity_permutation(4).tolist() == [0, 1, 2, 3]

    def test_invert(self):
        p = np.array([2, 0, 3, 1])
        inv = invert_permutation(p)
        assert inv[p].tolist() == [0, 1, 2, 3]
        assert p[inv].tolist() == [0, 1, 2, 3]

    def test_compose(self):
        rng = np.random.default_rng(0)
        a, b = rng.permutation(10), rng.permutation(10)
        v = rng.standard_normal(10)
        assert np.allclose(v[compose_permutations(a, b)], v[a][b])

    def test_is_permutation(self):
        assert is_permutation(np.array([1, 0, 2]))
        assert not is_permutation(np.array([0, 0, 2]))
        assert not is_permutation(np.array([0, 3]))


class TestLevelsetPermutation:
    def test_is_valid_permutation(self, medium_lower):
        perm = levelset_permutation(medium_lower)
        assert is_permutation(perm)

    def test_result_is_level_sorted(self, medium_lower):
        perm = levelset_permutation(medium_lower)
        lv = compute_levels(medium_lower)
        assert np.all(np.diff(lv[perm]) >= 0)

    def test_preserves_lower_triangularity(self, medium_lower):
        perm = levelset_permutation(medium_lower)
        P = medium_lower.permute_symmetric(perm)
        assert is_lower_triangular(P)

    def test_stability_within_levels(self, medium_lower):
        perm = levelset_permutation(medium_lower)
        lv = compute_levels(medium_lower)
        for l in range(int(lv.max()) + 1):
            members = perm[lv[perm] == l]
            assert np.all(np.diff(members) > 0)  # original order retained

    def test_permuted_levels_still_consistent(self, medium_lower):
        """After a symmetric level-sort, recomputed levels must be
        non-decreasing along the new ordering."""
        perm = levelset_permutation(medium_lower)
        P = medium_lower.permute_symmetric(perm)
        lv = compute_levels(P)
        assert np.all(np.diff(lv) >= 0)

    def test_solution_recovery(self, medium_lower):
        """Solving the permuted system recovers the original solution."""
        from repro.kernels import solve_serial

        rng = np.random.default_rng(4)
        b = rng.standard_normal(medium_lower.n_rows)
        x_ref = solve_serial(medium_lower, b)
        perm = levelset_permutation(medium_lower)
        P = medium_lower.permute_symmetric(perm)
        y = solve_serial(P, b[perm])
        x = np.empty_like(y)
        x[perm] = y
        assert np.allclose(x, x_ref, atol=1e-10)

"""Tables 1-2 closed forms, and formula == measurement on dense matrices."""

import numpy as np
import pytest

from repro.analysis import traffic
from repro.core.column_block import build_column_block_plan
from repro.core.recursive_block import build_recursive_block_plan
from repro.core.row_block import build_row_block_plan
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED

DEV = TITAN_RTX_SCALED


class TestPrintedTables:
    """The exact cell values printed in Tables 1 and 2 (units of n)."""

    def test_table1_column_block(self):
        vals = [traffic.column_block_b_updates(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([2.5, 8.5, 128.5, 32768.5])

    def test_table1_row_block(self):
        vals = [traffic.row_block_b_updates(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([1.75, 1.9375, 1.99609375, 2.0], rel=1e-2)

    def test_table1_recursive_block(self):
        vals = [traffic.recursive_block_b_updates(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([2.0, 3.0, 5.0, 9.0])

    def test_table2_column_block(self):
        vals = [traffic.column_block_x_loads(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([0.75, 0.9375, 0.99609375, 1.0], rel=1e-2)

    def test_table2_row_block(self):
        vals = [traffic.row_block_x_loads(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([1.5, 7.5, 127.5, 32767.5])

    def test_table2_recursive_block(self):
        vals = [traffic.recursive_block_x_loads(1.0, p) for p in traffic.PARTS_GRID]
        assert vals == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_rows_helpers(self):
        t1 = dict(traffic.table1_rows())
        t2 = dict(traffic.table2_rows())
        assert t1["rec. block"][0] == 2.0
        assert t2["col. block"][-1] == pytest.approx(1.0, rel=1e-3)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            traffic.column_block_b_updates(1.0, 6)


class TestMeasuredEqualsFormula:
    """On dense lower-triangular matrices the plan counters must equal the
    closed forms exactly — the strongest structural check in the suite."""

    @pytest.fixture
    def dense64(self):
        return CSRMatrix.from_dense(np.tril(np.ones((64, 64))))

    @pytest.mark.parametrize("parts", [2, 4, 8, 16, 32])
    def test_column_block(self, dense64, parts):
        plan = build_column_block_plan(dense64, parts, DEV)
        b, x = traffic.measured_traffic(plan)
        assert b == traffic.column_block_b_updates(64, parts)
        assert x == traffic.column_block_x_loads(64, parts)

    @pytest.mark.parametrize("parts", [2, 4, 8, 16, 32])
    def test_row_block(self, dense64, parts):
        plan = build_row_block_plan(dense64, parts, DEV)
        b, x = traffic.measured_traffic(plan)
        assert b == traffic.row_block_b_updates(64, parts)
        assert x == traffic.row_block_x_loads(64, parts)

    @pytest.mark.parametrize("parts", [2, 4, 8, 16, 32])
    def test_recursive_block(self, dense64, parts):
        depth = int(np.log2(parts))
        plan = build_recursive_block_plan(dense64, depth, DEV)
        b, x = traffic.measured_traffic(plan)
        assert b == traffic.recursive_block_b_updates(64, parts)
        assert x == traffic.recursive_block_x_loads(64, parts)

    def test_tradeoff_ordering(self):
        """Table 1-2's conclusion: at high part counts the recursive scheme
        is the only one whose *both* traffic terms stay sub-linear in
        parts."""
        n, p = 1.0, 65536
        assert traffic.recursive_block_b_updates(n, p) < traffic.column_block_b_updates(n, p)
        assert traffic.recursive_block_x_loads(n, p) < traffic.row_block_x_loads(n, p)


class TestExperimentModule:
    def test_table1_2_experiment(self):
        from repro.experiments import table1_2

        res = table1_2.run(n=32, parts=(4, 16))
        out = table1_2.render(res)
        for m in ("column-block", "row-block", "recursive-block"):
            for p in (4, 16):
                idx = traffic.PARTS_GRID.index(p)
                assert res.measured_b[m][p] == res.formula_b[m][idx]
                assert res.measured_x[m][p] == res.formula_x[m][idx]
        assert "Table 1" in out and "Table 2" in out

"""Fused multi-RHS paths: matmat, sweep_solve_multi, kernel solve_multi."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import (
    CuSparseLikeKernel,
    DiagonalKernel,
    LevelSetKernel,
    SPMV_KERNELS,
    SerialKernel,
    SyncFreeKernel,
    prepare_lower,
)
from repro.kernels.sweep import build_level_schedule, sweep_solve_multi

from conftest import random_lower, random_square

DEV = TITAN_RTX_SCALED


class TestMatmat:
    def test_csr_matches_dense(self, rng):
        A = random_square(30, 0.2, seed=1)
        X = rng.standard_normal((30, 5))
        assert np.allclose(A.matmat(X), A.to_dense() @ X)

    def test_csr_single_column_matches_matvec(self, rng):
        A = random_square(25, 0.25, seed=2)
        x = rng.standard_normal(25)
        assert np.allclose(A.matmat(x[:, None])[:, 0], A.matvec(x))

    def test_csr_shape_check(self):
        A = random_square(10, 0.3)
        with pytest.raises(ShapeMismatchError):
            A.matmat(np.ones((11, 2)))
        with pytest.raises(ShapeMismatchError):
            A.matmat(np.ones(10))

    def test_dcsr_matches_csr(self, rng):
        d = np.zeros((40, 40))
        d[::5] = (rng.random((8, 40)) < 0.3) * rng.standard_normal((8, 40))
        A = CSRMatrix.from_dense(d)
        X = rng.standard_normal((40, 3))
        assert np.allclose(A.to_dcsr().matmat(X), A.matmat(X))


class TestSweepSolveMulti:
    def test_matches_columnwise(self, medium_lower, rng):
        sched = build_level_schedule(prepare_lower(medium_lower))
        B = rng.standard_normal((medium_lower.n_rows, 6))
        X = sweep_solve_multi(sched, B)
        from repro.kernels.sweep import sweep_solve

        for j in range(6):
            assert np.allclose(X[:, j], sweep_solve(sched, B[:, j]), rtol=1e-12)

    def test_shape_check(self, medium_lower):
        sched = build_level_schedule(prepare_lower(medium_lower))
        with pytest.raises(ShapeMismatchError):
            sweep_solve_multi(sched, np.ones(medium_lower.n_rows))


class TestKernelSolveMulti:
    @pytest.mark.parametrize(
        "kernel_cls", [LevelSetKernel, SyncFreeKernel, CuSparseLikeKernel]
    )
    def test_fused_correct_and_amortized(self, kernel_cls, medium_lower, rng):
        kernel = kernel_cls()
        prep = prepare_lower(medium_lower)
        aux, _ = kernel.preprocess(prep, DEV)
        B = rng.standard_normal((medium_lower.n_rows, 8))
        X, fused = kernel.solve_multi(aux, B, DEV)
        for j in range(8):
            xj, single = kernel.solve(aux, B[:, j], DEV)
            assert np.allclose(X[:, j], xj, rtol=1e-11)
        assert fused.detail["fused"] is True
        assert fused.time_s < 8 * single.time_s

    def test_serial_kernel_fallback(self, small_lower, rng):
        kernel = SerialKernel()
        prep = prepare_lower(small_lower)
        aux, _ = kernel.preprocess(prep, DEV)
        B = rng.standard_normal((small_lower.n_rows, 3))
        X, report = kernel.solve_multi(aux, B, DEV)
        assert report.detail["fused"] is False
        for j in range(3):
            assert np.allclose(small_lower.matvec(X[:, j]), B[:, j], atol=1e-9)

    def test_diagonal_fused(self, rng):
        L = CSRMatrix.from_dense(np.diag(rng.random(20) + 1))
        kernel = DiagonalKernel()
        aux, _ = kernel.preprocess(prepare_lower(L), DEV)
        B = rng.standard_normal((20, 4))
        X, report = kernel.solve_multi(aux, B, DEV)
        assert np.allclose(X, B / aux.diag[:, None])
        assert report.detail["fused"] is True


class TestSpMVRunMulti:
    @pytest.mark.parametrize("name", list(SPMV_KERNELS))
    def test_fused_update(self, name, rng):
        A = random_square(60, 0.1, seed=3)
        kernel = SPMV_KERNELS[name]()
        Ain = A.to_dcsr() if kernel.wants_dcsr else A
        X = rng.standard_normal((60, 4))
        B = rng.standard_normal((60, 4))
        expect = B - A.to_dense() @ X
        report = kernel.run_multi(Ain, X, B, DEV)
        assert np.allclose(B, expect)
        assert report.detail["n_rhs"] == 4
        assert report.flops == pytest.approx(2.0 * A.nnz * 4)

    @pytest.mark.parametrize("name", list(SPMV_KERNELS))
    def test_fused_cheaper_than_repeated(self, name, rng):
        A = random_square(2000, 0.003, seed=4)
        kernel = SPMV_KERNELS[name]()
        Ain = A.to_dcsr() if kernel.wants_dcsr else A
        X = rng.standard_normal((2000, 16))
        t_fused = kernel.run_multi(Ain, X, np.zeros((2000, 16)), DEV).time_s
        t_single = kernel.run(Ain, X[:, 0], np.zeros(2000), DEV).time_s
        assert t_fused < 16 * t_single

    def test_shape_check(self):
        A = random_square(10, 0.3)
        kernel = SPMV_KERNELS["scalar-csr"]()
        with pytest.raises(ShapeMismatchError):
            kernel.run_multi(A, np.ones((11, 2)), np.ones((10, 2)), DEV)

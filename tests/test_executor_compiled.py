"""The compiled zero-allocation executor (:mod:`repro.core.executor`).

CompiledPlan must be a drop-in for ``plan.solve``/``plan.solve_multi``:
same solution, same dtype promotion, same simulated report — while warm
solves allocate nothing but the result array.  The arena pool is shared
by the serve thread pool, so buffer reuse across concurrent requests
must never leak one request's data into another's answer.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Observability
from repro.core.executor import _POOL_KEEP, CompiledPlan, compile_plan
from repro.core.solver import SOLVERS, PreparedSolve
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels.sptrsv_serial import solve_serial

from conftest import random_lower

DEVICE = TITAN_RTX_SCALED

METHODS = ["serial", "levelset", "cusparse", "syncfree",
           "column-block", "row-block", "recursive-block"]


def _prepared(method, n=120, seed=0, density=0.08):
    L = random_lower(n, density, seed=seed)
    solver = SOLVERS[method](device=DEVICE)
    return L, solver.prepare(L)


@pytest.mark.parametrize("method", METHODS)
def test_matches_plan_path_single_rhs(method):
    L, prepared = _prepared(method)
    compiled = compile_plan(prepared.plan, DEVICE)
    rng = np.random.default_rng(1)
    for _ in range(3):  # repeats land on the pooled arena
        b = rng.standard_normal(L.n_rows)
        x_ref, rep_ref = prepared.plan.solve(b, DEVICE)
        x, rep = compiled.solve(b)
        np.testing.assert_allclose(x, x_ref, rtol=1e-9, atol=1e-12)
        assert x.dtype == x_ref.dtype
        assert rep.time_s == rep_ref.time_s
        assert rep.launches == rep_ref.launches
        assert rep.flops == rep_ref.flops


@pytest.mark.parametrize("method", ["levelset", "recursive-block", "row-block"])
def test_matches_plan_path_multi_rhs(method):
    L, prepared = _prepared(method)
    compiled = compile_plan(prepared.plan, DEVICE)
    rng = np.random.default_rng(2)
    for k in (1, 3, 7):
        B = rng.standard_normal((L.n_rows, k))
        X_ref, rep_ref = prepared.plan.solve_multi(B, DEVICE)
        for _ in range(2):  # first call captures, second runs frozen
            X, rep = compiled.solve_multi(B)
            np.testing.assert_allclose(X, X_ref, rtol=1e-9, atol=1e-12)
            assert X.shape == (L.n_rows, k)
            assert rep.time_s == rep_ref.time_s
            assert rep.launches == rep_ref.launches


def test_frozen_report_is_fresh_per_solve():
    L, prepared = _prepared("recursive-block")
    compiled = compile_plan(prepared.plan, DEVICE)
    b = np.ones(L.n_rows)
    _, rep1 = compiled.solve(b)
    _, rep2 = compiled.solve(b)
    assert rep1 is not rep2
    rep1.detail["mutated"] = True
    rep1.kernels.clear()
    _, rep3 = compiled.solve(b)
    assert "mutated" not in rep3.detail
    assert rep3.kernels  # caller mutation never reaches the frozen copy


class TestDtypes:
    def test_float32_rhs_stays_float32(self):
        L, prepared = _prepared("levelset")
        compiled = compile_plan(prepared.plan, DEVICE)
        b = np.linspace(-1, 1, L.n_rows).astype(np.float32)
        x, _ = compiled.solve(b)
        x_ref, _ = prepared.plan.solve(b, DEVICE)
        assert x.dtype == np.float32 == x_ref.dtype
        np.testing.assert_allclose(x, x_ref, rtol=1e-5)

    @pytest.mark.parametrize("dt", [np.int32, np.int64])
    def test_integer_rhs_promotes_to_float64(self, dt):
        L, prepared = _prepared("recursive-block")
        compiled = compile_plan(prepared.plan, DEVICE)
        b = np.arange(L.n_rows, dtype=dt) % 7 - 3
        x, _ = compiled.solve(b)
        assert x.dtype == np.float64
        np.testing.assert_allclose(
            x, solve_serial(L, b.astype(np.float64)), rtol=1e-9
        )

    def test_integer_multi_rhs_promotes(self):
        L, prepared = _prepared("levelset")
        compiled = compile_plan(prepared.plan, DEVICE)
        B = (np.arange(L.n_rows * 3, dtype=np.int64) % 5).reshape(-1, 3)
        X, _ = compiled.solve_multi(B)
        assert X.dtype == np.float64
        X_ref, _ = prepared.plan.solve_multi(B, DEVICE)
        np.testing.assert_allclose(X, X_ref, rtol=1e-9)

    def test_mixed_dtype_streams_share_the_plan(self):
        # Alternating dtypes must each get their own pooled arenas.
        L, prepared = _prepared("recursive-block")
        compiled = compile_plan(prepared.plan, DEVICE)
        rng = np.random.default_rng(3)
        for _ in range(3):
            b64 = rng.standard_normal(L.n_rows)
            b32 = b64.astype(np.float32)
            x64, _ = compiled.solve(b64)
            x32, _ = compiled.solve(b32)
            assert x64.dtype == np.float64 and x32.dtype == np.float32
            np.testing.assert_allclose(x32, x64, rtol=1e-4, atol=1e-5)


class TestShapeChecks:
    def test_single_rhs_wrong_length(self):
        _, prepared = _prepared("levelset", n=50)
        compiled = compile_plan(prepared.plan, DEVICE)
        with pytest.raises(Exception):
            compiled.solve(np.ones(49))

    def test_multi_rhs_wrong_rows(self):
        _, prepared = _prepared("levelset", n=50)
        compiled = compile_plan(prepared.plan, DEVICE)
        with pytest.raises(Exception):
            compiled.solve_multi(np.ones((49, 2)))


def test_non_pure_plan_delegates():
    L, prepared = _prepared("levelset")
    plan = prepared.plan
    kernel = plan.segments[0].kernel
    # Simulate a third-party kernel that never opted into pure_report.
    type(kernel).pure_report = False
    try:
        compiled = CompiledPlan(plan, DEVICE)
        assert compiled.pure is False
        b = np.ones(L.n_rows)
        x, rep = compiled.solve(b)
        x_ref, rep_ref = plan.solve(b, DEVICE)
        np.testing.assert_allclose(x, x_ref, rtol=1e-12)
        assert rep.time_s == rep_ref.time_s
        X, _ = compiled.solve_multi(np.ones((L.n_rows, 2)))
        X_ref, _ = plan.solve_multi(np.ones((L.n_rows, 2)), DEVICE)
        np.testing.assert_allclose(X, X_ref, rtol=1e-12)
    finally:
        type(kernel).pure_report = True


def test_obs_active_takes_the_instrumented_path():
    L, prepared = _prepared("recursive-block")
    compiled = prepared.compile()
    obs = Observability()
    with obs.activate():
        x, rep = prepared.solve(np.ones(L.n_rows))
    # The traced solve ran the plan path: per-segment profile present.
    assert len(rep.profile) == len(prepared.plan.segments)
    assert obs.serve_metrics.solves_total.value(method="recursive-block") == 1
    np.testing.assert_allclose(x, compiled.solve(np.ones(L.n_rows))[0],
                               rtol=1e-9)


def test_prepared_solve_compiles_lazily_and_caches():
    L, prepared = _prepared("levelset")
    assert isinstance(prepared, PreparedSolve)
    c1 = prepared.compile()
    c2 = prepared.compile()
    assert c1 is c2
    x, _ = prepared.solve(np.ones(L.n_rows))
    np.testing.assert_allclose(x, solve_serial(L, np.ones(L.n_rows)),
                               rtol=1e-9)


def test_arena_pool_stays_bounded():
    L, prepared = _prepared("levelset", n=80)
    compiled = compile_plan(prepared.plan, DEVICE)
    b = np.ones(L.n_rows)
    for _ in range(3 * _POOL_KEEP):
        compiled.solve(b)
    free = compiled._pool._free
    assert all(len(stack) <= _POOL_KEEP for stack in free.values())
    # Sequential solves reuse one arena; the free list stays tiny.
    assert sum(len(stack) for stack in free.values()) <= 2


class TestThreadPoolStress:
    """Arena reuse must never leak state across concurrent requests."""

    @pytest.mark.parametrize("method", ["levelset", "recursive-block"])
    def test_concurrent_single_rhs(self, method):
        L, prepared = _prepared(method, n=150, seed=5)
        compiled = prepared.compile()
        rng = np.random.default_rng(6)
        rhs = [rng.standard_normal(L.n_rows) for _ in range(32)]
        expected = [solve_serial(L, b) for b in rhs]
        barrier = threading.Barrier(8)

        def worker(idx):
            barrier.wait(timeout=10.0)
            errs = []
            for j in range(idx, len(rhs), 8):
                x, _ = compiled.solve(rhs[j])
                errs.append(float(np.max(np.abs(x - expected[j]))))
            return max(errs)

        with ThreadPoolExecutor(max_workers=8) as pool:
            worst = max(pool.map(worker, range(8)))
        assert worst < 1e-8

    def test_concurrent_mixed_widths_and_dtypes(self):
        L, prepared = _prepared("recursive-block", n=120, seed=7)
        compiled = prepared.compile()
        rng = np.random.default_rng(8)
        jobs = []
        for i in range(24):
            if i % 3 == 0:
                b = rng.standard_normal((L.n_rows, 2 + i % 4))
            elif i % 3 == 1:
                b = rng.standard_normal(L.n_rows).astype(np.float32)
            else:
                b = rng.standard_normal(L.n_rows)
            jobs.append(b)

        def expected(b):
            if b.ndim == 2:
                return np.stack(
                    [solve_serial(L, b[:, j]) for j in range(b.shape[1])],
                    axis=1,
                )
            return solve_serial(L, b.astype(np.float64))

        refs = [expected(b) for b in jobs]

        def worker(i):
            b = jobs[i]
            x, _ = compiled.solve_multi(b) if b.ndim == 2 else compiled.solve(b)
            tol = 1e-4 if x.dtype == np.float32 else 1e-8
            assert float(np.max(np.abs(x - refs[i]))) < tol
            return True

        with ThreadPoolExecutor(max_workers=6) as pool:
            assert all(pool.map(worker, range(len(jobs))))

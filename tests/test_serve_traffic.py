"""Tests for the synthetic traffic generator and replay (repro.serve.traffic)."""

import asyncio
from collections import Counter

import numpy as np
import pytest

from repro.serve import (
    AsyncSolveService,
    IngressConfig,
    PriorityClass,
    ServiceConfig,
    SolveService,
    TrafficSpec,
    generate_traffic,
    make_rhs,
    mixed_workload,
    replay_async,
    replay_fifo,
)
from repro.serve.traffic import ReplayReport
from repro.validate import FaultInjector


MATS = ["a", "b", "c", "d"]


class TestSpecValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TrafficSpec(duration_s=0)
        with pytest.raises(ValueError):
            TrafficSpec(base_rate=0)
        with pytest.raises(ValueError):
            TrafficSpec(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            TrafficSpec(burst_rate=-1)
        with pytest.raises(ValueError):
            TrafficSpec(tenants=())
        with pytest.raises(ValueError):
            TrafficSpec(tenants=("a", "b"), tenant_weights=(1,))
        with pytest.raises(ValueError):
            TrafficSpec(tenants=("a", "b"), tenant_classes=("x",))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            generate_traffic(TrafficSpec(), [])


class TestGeneration:
    def test_deterministic_for_seed(self):
        spec = TrafficSpec(duration_s=1.0, base_rate=80, burst_rate=40,
                           seed=9)
        assert generate_traffic(spec, MATS) == generate_traffic(spec, MATS)

    def test_seed_changes_trace(self):
        a = generate_traffic(TrafficSpec(seed=1), MATS)
        b = generate_traffic(TrafficSpec(seed=2), MATS)
        assert a != b

    def test_arrivals_ordered_and_bounded(self):
        spec = TrafficSpec(duration_s=1.5, base_rate=100, seed=3)
        trace = generate_traffic(spec, MATS)
        ts = [a.t for a in trace]
        assert ts == sorted(ts)
        assert all(0 <= t < spec.duration_s for t in ts)
        # rate sanity: mean arrivals near base_rate * duration
        assert 0.5 * 150 < len(trace) < 1.5 * 150

    def test_hot_key_skew_orders_popularity(self):
        spec = TrafficSpec(duration_s=4.0, base_rate=200,
                           hot_key_skew=1.5, seed=5)
        counts = Counter(a.matrix for a in generate_traffic(spec, MATS))
        assert counts["a"] > counts["d"]

    def test_zero_skew_is_roughly_uniform(self):
        spec = TrafficSpec(duration_s=4.0, base_rate=200,
                           hot_key_skew=0.0, seed=5)
        counts = Counter(a.matrix for a in generate_traffic(spec, MATS))
        lo, hi = min(counts.values()), max(counts.values())
        assert hi < 2 * lo

    def test_tenant_weights_and_classes(self):
        spec = TrafficSpec(
            duration_s=4.0, base_rate=200, seed=7,
            tenants=("big", "small"), tenant_weights=(4, 1),
            tenant_classes=("batch", "interactive"),
        )
        trace = generate_traffic(spec, MATS)
        counts = Counter(a.tenant for a in trace)
        assert counts["big"] > 2 * counts["small"]
        for a in trace:
            expected = "batch" if a.tenant == "big" else "interactive"
            assert a.klass == expected

    def test_burst_windows_are_denser(self):
        quiet = TrafficSpec(duration_s=4.0, base_rate=50,
                            diurnal_amplitude=0.0, seed=11)
        bursty = TrafficSpec(duration_s=4.0, base_rate=50,
                             diurnal_amplitude=0.0, burst_rate=200,
                             burst_every_s=0.5, burst_duration_s=0.2,
                             seed=11)
        assert len(generate_traffic(bursty, MATS)) > len(
            generate_traffic(quiet, MATS)
        )

    def test_rate_at_reflects_diurnal_and_bursts(self):
        spec = TrafficSpec(base_rate=100, diurnal_amplitude=0.5,
                           diurnal_period_s=1.0, burst_rate=50)
        assert spec.rate_at(0.25) == pytest.approx(150.0)
        assert spec.rate_at(0.75) == pytest.approx(50.0)
        assert spec.rate_at(0.25, [(0.2, 0.3)]) == pytest.approx(200.0)

    def test_make_rhs_deterministic(self):
        assert np.array_equal(make_rhs(16, 42), make_rhs(16, 42))
        assert not np.array_equal(make_rhs(16, 42), make_rhs(16, 43))
        assert make_rhs(16, 1, n_rhs=4).shape == (16, 4)


class TestReplay:
    def setup_method(self):
        self.pool = mixed_workload(
            4, n_matrices=2, hot_matrices=2, seed=3
        ).matrices
        self.spec = TrafficSpec(
            duration_s=0.4, base_rate=50, seed=13,
            tenants=("x", "y"), tenant_classes=("interactive", "batch"),
        )
        self.trace = generate_traffic(self.spec, list(self.pool))

    def test_replay_async_serves_everything_uncontended(self):
        svc = SolveService(max_workers=2)

        async def main():
            async with AsyncSolveService(svc) as ing:
                return await replay_async(
                    ing, self.pool, self.trace, speed=4.0
                )

        report = asyncio.run(main())
        svc.close()
        assert report.outcomes() == {"ok": len(self.trace)}
        assert len(report.records) == len(self.trace)
        assert report.percentile(50) > 0

    def test_replay_fifo_matches_trace(self):
        svc = SolveService(max_workers=2)
        report = replay_fifo(svc, self.pool, self.trace, speed=4.0)
        svc.close()
        assert report.outcomes() == {"ok": len(self.trace)}

    def test_replay_fifo_deadline_maps_to_timeouts(self):
        svc = SolveService(
            ServiceConfig(max_workers=1),
            fault_injector=FaultInjector(solve_delay_s=0.05),
        )
        report = replay_fifo(
            svc, self.pool, self.trace, speed=8.0,
            deadlines={"interactive": 0.01, "batch": None},
        )
        svc.close()
        outcomes = report.outcomes()
        assert outcomes.get("timeout", 0) > 0
        # deadline-free batch requests never time out
        assert not any(
            r["outcome"] == "timeout" and r["klass"] == "batch"
            for r in report.records
        )

    def test_replay_async_records_sheds(self):
        svc = SolveService(
            ServiceConfig(max_workers=1),
            fault_injector=FaultInjector(solve_delay_s=0.05),
        )
        cfg = IngressConfig(
            classes=(
                PriorityClass("interactive", rank=0, queue_limit=2,
                              deadline_s=0.2),
                PriorityClass("batch", rank=1, queue_limit=2,
                              deadline_s=0.2),
            ),
            default_class="batch", backpressure_s=0.0, max_inflight=1,
        )

        async def main():
            async with AsyncSolveService(svc, config=cfg) as ing:
                return await replay_async(
                    ing, self.pool, self.trace, speed=8.0
                )

        report = asyncio.run(main())
        svc.close()
        shed_outcomes = {
            k: v for k, v in report.outcomes().items()
            if k.startswith("shed:")
        }
        assert shed_outcomes
        assert report.shed_rate("x") + report.shed_rate("y") > 0

    def test_speed_must_be_positive(self):
        svc = SolveService(max_workers=1)
        with pytest.raises(ValueError):
            replay_fifo(svc, self.pool, self.trace, speed=0)

        async def main():
            async with AsyncSolveService(svc) as ing:
                with pytest.raises(ValueError):
                    await replay_async(ing, self.pool, self.trace, speed=-1)

        asyncio.run(main())
        svc.close()


class TestReplayReport:
    def _report(self):
        return ReplayReport(records=[
            {"t": 0.0, "matrix": "a", "tenant": "x", "klass": "i",
             "outcome": "ok", "wall_s": 0.01},
            {"t": 0.1, "matrix": "a", "tenant": "x", "klass": "i",
             "outcome": "shed:expired", "wall_s": 0.2},
            {"t": 0.2, "matrix": "b", "tenant": "y", "klass": "b",
             "outcome": "ok", "wall_s": 0.05},
            {"t": 0.3, "matrix": "b", "tenant": "y", "klass": "b",
             "outcome": "rejected", "wall_s": 0.0},
        ])

    def test_filters_and_percentiles(self):
        r = self._report()
        assert r.latencies(tenant="x") == [0.01]
        assert r.latencies(klass="b") == [0.05]
        assert r.latencies(outcome=None) == [0.01, 0.2, 0.05, 0.0]
        assert r.percentile(50, tenant="y") == pytest.approx(0.05)
        assert np.isnan(r.percentile(99, tenant="nobody"))

    def test_shed_rates(self):
        r = self._report()
        assert r.shed_rate("x") == pytest.approx(0.5)
        assert r.shed_rate("y") == pytest.approx(0.5)  # rejected counts
        assert r.shed_rate("nobody") == 0.0

    def test_outcomes_counts(self):
        assert self._report().outcomes() == {
            "ok": 2, "shed:expired": 1, "rejected": 1,
        }

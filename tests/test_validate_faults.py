"""Fault injection: drive the service's fallback/timeout/overload paths
deterministically, with no monkeypatching of internals."""

import threading

import numpy as np
import pytest

from repro import (
    FaultInjector,
    InjectedFaultError,
    ServiceOverloadedError,
    SolveService,
)
from repro.serve.service import ServiceTimeoutError

from conftest import random_lower


class TestInjectorUnit:
    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(build_delay_s=-1.0)

    def test_method_filter_and_budget(self):
        inj = FaultInjector(build_error=True, methods={"levelset"}, max_faults=1)
        inj.before_build("recursive-block")  # filtered: no raise
        with pytest.raises(InjectedFaultError):
            inj.before_build("levelset")
        inj.before_build("levelset")  # budget spent: no raise
        assert inj.faults_fired == 1 and inj.builds_seen == 3
        inj.reset()
        assert inj.faults_fired == 0 and inj.builds_seen == 0
        with pytest.raises(InjectedFaultError):
            inj.before_build("levelset")

    def test_error_instance_and_class(self):
        sentinel = RuntimeError("planner exploded")
        inj = FaultInjector(build_error=sentinel)
        with pytest.raises(RuntimeError) as ei:
            inj.before_build("any")
        assert ei.value is sentinel

        inj = FaultInjector(build_error=KeyError)
        with pytest.raises(KeyError):
            inj.before_build("any")

    def test_thread_safe_budget(self):
        inj = FaultInjector(build_error=True, max_faults=5)
        raised = []

        def worker():
            try:
                inj.before_build("m")
            except InjectedFaultError:
                raised.append(1)

        threads = [threading.Thread(target=worker) for _ in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(raised) == 5 and inj.faults_fired == 5


class TestFallbackPath:
    def test_injected_planner_failure_lands_in_stats(self):
        L = random_lower(50, 0.12, seed=1)
        b = np.ones(50)
        inj = FaultInjector(build_error=True, max_faults=1)
        with SolveService(max_workers=2, fault_injector=inj) as svc:
            r = svc.solve(L, b, method="recursive-block")
            assert r.fallback and r.method == "levelset"
            assert np.max(np.abs(L.matvec(r.x) - b)) < 1e-8
            stats = svc.stats()
        assert stats.fallbacks == 1
        assert inj.builds_seen == 1 and inj.faults_fired == 1

    def test_install_after_construction(self):
        L = random_lower(40, 0.12, seed=2)
        with SolveService(max_workers=1) as svc:
            r0 = svc.solve(L, np.ones(40))
            assert not r0.fallback
            svc.install_fault_injector(FaultInjector(build_error=True))
            M = random_lower(40, 0.12, seed=3)  # different matrix: cache miss
            r1 = svc.solve(M, np.ones(40))
            assert r1.fallback

    def test_fallback_disabled_propagates_injected_error(self):
        L = random_lower(40, 0.12, seed=4)
        inj = FaultInjector(build_error=True)
        with SolveService(max_workers=1, fallback=False, fault_injector=inj) as svc:
            with pytest.raises(InjectedFaultError):
                svc.solve(L, np.ones(40))
            assert svc.stats().failed == 1

    def test_cached_plan_bypasses_build_fault(self):
        L = random_lower(40, 0.12, seed=5)
        inj = FaultInjector(build_error=True)
        with SolveService(max_workers=1) as svc:
            assert not svc.solve(L, np.ones(40)).fallback  # plan cached
            svc.install_fault_injector(inj)
            r = svc.solve(L, np.ones(40))  # cache hit: builder never runs
            assert r.cache_hit and not r.fallback
        assert inj.builds_seen == 0


class TestTimeoutPath:
    def test_solve_delay_expires_deadline(self):
        L = random_lower(40, 0.12, seed=6)
        inj = FaultInjector(solve_delay_s=0.2)
        with SolveService(max_workers=1, fault_injector=inj) as svc:
            with pytest.raises(ServiceTimeoutError):
                svc.solve(L, np.ones(40), timeout_s=0.05)
            stats = svc.stats()
        assert stats.timeouts == 1
        assert inj.solves_seen == 1

    def test_delay_under_deadline_succeeds(self):
        L = random_lower(40, 0.12, seed=6)
        inj = FaultInjector(solve_delay_s=0.01)
        with SolveService(max_workers=1, fault_injector=inj) as svc:
            r = svc.solve(L, np.ones(40), timeout_s=5.0)
        assert np.max(np.abs(L.matvec(r.x) - np.ones(40))) < 1e-8


class TestOverloadPath:
    def test_queue_overflow_rejected_and_counted(self):
        L = random_lower(40, 0.12, seed=7)
        b = np.ones(40)
        # One worker held busy by an injected slow solve, queue of one:
        # the second submit must bounce.
        inj = FaultInjector(solve_delay_s=0.5)
        with SolveService(
            max_workers=1, queue_limit=1, fault_injector=inj
        ) as svc:
            fut = svc.submit(L, b)
            with pytest.raises(ServiceOverloadedError):
                svc.submit(L, b)
            stats_during = svc.stats()
            fut.result()
        assert stats_during.rejected == 1
        # The admitted request still completed normally.
        assert svc.stats().completed == 1
        assert svc.stats().rejected == 1

    def test_rejected_appears_in_render_and_dict(self):
        L = random_lower(30, 0.15, seed=8)
        inj = FaultInjector(solve_delay_s=0.5)
        with SolveService(
            max_workers=1, queue_limit=1, fault_injector=inj
        ) as svc:
            fut = svc.submit(L, np.ones(30))
            with pytest.raises(ServiceOverloadedError):
                svc.submit(L, np.ones(30))
            fut.result()
            stats = svc.stats()
        assert stats.as_dict()["rejected"] == 1
        assert "rejected 1" in stats.render()

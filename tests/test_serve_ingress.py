"""Tests for the deadline-aware asyncio ingress (repro.serve.ingress)."""

import asyncio

import numpy as np
import pytest

from repro.errors import IngressShedError, ServiceClosedError
from repro.obs import Observability
from repro.serve import (
    DEFAULT_CLASSES,
    AsyncSolveService,
    IngressConfig,
    PriorityClass,
    ServiceConfig,
    ServiceTimeoutError,
    SolveService,
)
from repro.validate import FaultInjector

from conftest import random_lower


@pytest.fixture
def system():
    L = random_lower(50, 0.15, seed=5)
    return L, np.ones(L.n_rows)


def run(coro):
    return asyncio.run(coro)


def slow_service(delay_s: float, workers: int = 1, **cfg) -> SolveService:
    return SolveService(
        ServiceConfig(max_workers=workers, **cfg),
        fault_injector=FaultInjector(solve_delay_s=delay_s),
    )


def one_class(limit: int, deadline_s=5.0, **over) -> IngressConfig:
    return IngressConfig(
        classes=(
            PriorityClass("only", rank=0, queue_limit=limit,
                          deadline_s=deadline_s),
        ),
        default_class="only",
        **over,
    )


class TestConfig:
    def test_default_classes_are_ranked_and_named(self):
        names = {c.name for c in DEFAULT_CLASSES}
        assert names == {"interactive", "standard", "batch"}
        ranks = [c.rank for c in DEFAULT_CLASSES]
        assert len(set(ranks)) == len(ranks)

    def test_rejects_bad_class(self):
        with pytest.raises(ValueError):
            PriorityClass("", rank=0)
        with pytest.raises(ValueError):
            PriorityClass("x", queue_limit=0)
        with pytest.raises(ValueError):
            PriorityClass("x", deadline_s=0.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            IngressConfig(classes=())
        with pytest.raises(ValueError):
            IngressConfig(classes=(
                PriorityClass("a", rank=0), PriorityClass("a", rank=1),
            ))
        with pytest.raises(ValueError):
            IngressConfig(classes=(
                PriorityClass("a", rank=0), PriorityClass("b", rank=0),
            ))
        with pytest.raises(ValueError):
            IngressConfig(default_class="nope")
        with pytest.raises(ValueError):
            IngressConfig(backpressure_s=-1.0)
        with pytest.raises(ValueError):
            IngressConfig(max_inflight=0)

    def test_resolve_unknown_class(self, system):
        L, b = system

        async def main():
            async with AsyncSolveService() as ing:
                with pytest.raises(ValueError, match="unknown priority class"):
                    await ing.submit(L, b, priority="platinum")

        run(main())

    def test_config_or_overrides_not_both(self):
        with pytest.raises(ValueError):
            AsyncSolveService(
                config=IngressConfig(), backpressure_s=1.0
            )


class TestHappyPath:
    def test_solves_match_service(self, system):
        L, b = system
        svc = SolveService(max_workers=2)
        expected = np.asarray(svc.solve(L, b).x)

        async def main():
            async with AsyncSolveService(svc) as ing:
                results = await asyncio.gather(*[
                    ing.submit(L, b, priority=c)
                    for c in ("interactive", "standard", "batch")
                ])
                return results

        results = run(main())
        for r in results:
            assert np.array_equal(np.asarray(r.x), expected)
        svc.close()

    def test_owned_service_closed_with_ingress(self, system):
        L, b = system

        async def main():
            ing = AsyncSolveService()
            async with ing:
                await ing.submit(L, b)
            return ing

        ing = run(main())
        with pytest.raises(ServiceClosedError):
            ing.service.submit(L, b)

    def test_stats_counters_settle(self, system):
        L, b = system

        async def main():
            async with AsyncSolveService() as ing:
                await asyncio.gather(*[
                    ing.submit(L, b, tenant=f"t{i % 2}") for i in range(6)
                ])
                st = ing.stats()
                assert ing.total_depth() == 0
                assert ing.inflight == 0
                return st

        st = run(main())
        assert st.submitted == st.admitted == st.dispatched == 6
        assert st.completed == 6 and st.failed == 0
        assert st.shed_total == 0
        assert st.per_tenant["t0"]["completed"] == 3
        assert "ingress stats" in st.render()
        assert st.as_dict()["completed"] == 6

    def test_submit_after_close_raises(self, system):
        L, b = system

        async def main():
            ing = AsyncSolveService()
            async with ing:
                await ing.submit(L, b)
            with pytest.raises(ServiceClosedError):
                await ing.submit(L, b)

        run(main())


class TestPriorityAndEDF:
    def test_higher_class_dispatches_first(self, system):
        """With the worker pinned, queued interactive requests must all
        dispatch before any queued batch request."""
        L, b = system
        svc = slow_service(0.03)
        order = []

        async def tracked(ing, klass, tag):
            await ing.submit(L, b, priority=klass)
            order.append(tag)

        async def main():
            cfg = IngressConfig(backpressure_s=0.0)
            async with AsyncSolveService(svc, config=cfg) as ing:
                pin = asyncio.create_task(ing.submit(L, b, priority="batch"))
                await asyncio.sleep(0.01)
                tasks = [
                    asyncio.create_task(tracked(ing, "batch", f"b{i}"))
                    for i in range(3)
                ]
                await asyncio.sleep(0)
                tasks += [
                    asyncio.create_task(
                        tracked(ing, "interactive", f"i{i}")
                    )
                    for i in range(3)
                ]
                await asyncio.gather(pin, *tasks)

        run(main())
        svc.close()
        assert len(order) == 6
        interactive_pos = [order.index(f"i{i}") for i in range(3)]
        batch_pos = [order.index(f"b{i}") for i in range(3)]
        assert max(interactive_pos) < min(batch_pos), order

    def test_edf_within_class(self, system):
        """Within one class, the tightest deadline runs first even when
        it arrived last."""
        L, b = system
        svc = slow_service(0.03)
        order = []

        async def tracked(ing, deadline_s, tag):
            await ing.submit(L, b, deadline_s=deadline_s)
            order.append(tag)

        async def main():
            cfg = one_class(limit=16, backpressure_s=0.0)
            async with AsyncSolveService(svc, config=cfg) as ing:
                pin = asyncio.create_task(ing.submit(L, b))
                await asyncio.sleep(0.01)
                tasks = [
                    asyncio.create_task(tracked(ing, 9.0, "loose")),
                    asyncio.create_task(tracked(ing, 6.0, "mid")),
                ]
                await asyncio.sleep(0)
                tasks.append(
                    asyncio.create_task(tracked(ing, 3.0, "tight"))
                )
                await asyncio.gather(pin, *tasks)

        run(main())
        svc.close()
        assert order == ["tight", "mid", "loose"]

    def test_no_deadline_sorts_last(self, system):
        L, b = system
        svc = slow_service(0.03)
        order = []

        async def tracked(ing, deadline_s, tag):
            await ing.submit(L, b, deadline_s=deadline_s)
            order.append(tag)

        async def main():
            cfg = one_class(limit=16, deadline_s=None, backpressure_s=0.0)
            async with AsyncSolveService(svc, config=cfg) as ing:
                pin = asyncio.create_task(ing.submit(L, b))
                await asyncio.sleep(0.01)
                tasks = [
                    asyncio.create_task(tracked(ing, None, "free")),
                ]
                await asyncio.sleep(0)
                tasks.append(
                    asyncio.create_task(tracked(ing, 5.0, "dated"))
                )
                await asyncio.gather(pin, *tasks)

        run(main())
        svc.close()
        assert order == ["dated", "free"]


class TestShedding:
    def test_admission_shed_when_full(self, system):
        L, b = system
        svc = slow_service(0.05)

        async def main():
            cfg = one_class(limit=2, backpressure_s=0.0, max_inflight=1)
            async with AsyncSolveService(svc, config=cfg) as ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b, tenant="t"))
                    for _ in range(8)
                ]
                done = await asyncio.gather(*tasks, return_exceptions=True)
                st = ing.stats()
                return done, st

        done, st = run(main())
        svc.close()
        sheds = [e for e in done if isinstance(e, IngressShedError)]
        assert sheds and all(e.reason == "admission" for e in sheds)
        assert all(e.tenant == "t" for e in sheds)
        assert st.shed.get("admission", 0) == len(sheds)
        # one tenant competing with itself must never trigger eviction
        assert st.shed.get("evicted", 0) == 0

    def test_fairness_eviction_protects_light_tenant(self, system):
        L, b = system
        svc = slow_service(0.08)

        async def main():
            cfg = one_class(limit=3, backpressure_s=0.0, max_inflight=1)
            async with AsyncSolveService(svc, config=cfg) as ing:
                warm = asyncio.create_task(ing.submit(L, b, tenant="warm"))
                await asyncio.sleep(0.02)  # occupy the only slot
                hogs = [
                    asyncio.create_task(ing.submit(L, b, tenant="hog"))
                    for _ in range(3)
                ]
                await asyncio.sleep(0)  # queue now full of hog
                light = asyncio.create_task(
                    ing.submit(L, b, tenant="light")
                )
                done = await asyncio.gather(
                    warm, *hogs, light, return_exceptions=True
                )
                return done, ing.stats()

        done, st = run(main())
        svc.close()
        sheds = [e for e in done if isinstance(e, IngressShedError)]
        assert len(sheds) == 1
        assert sheds[0].reason == "evicted" and sheds[0].tenant == "hog"
        assert st.per_tenant["light"]["shed"] == 0
        assert st.per_tenant["hog"]["shed"] == 1

    def test_expired_in_queue_is_shed_not_solved(self, system):
        """The queue-expiry bugfix at the ingress layer: a request whose
        deadline died in queue is shed without ever reaching the
        backend."""
        L, b = system
        svc = slow_service(0.08)
        svc.solve(L, b)  # build the plan outside the measured window
        before = svc.stats().requests

        async def main():
            cfg = one_class(limit=16, deadline_s=0.04, backpressure_s=0.0,
                            max_inflight=1)
            async with AsyncSolveService(svc, config=cfg) as ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b))
                    for _ in range(5)
                ]
                done = await asyncio.gather(*tasks, return_exceptions=True)
                return done, ing.stats()

        done, st = run(main())
        backend_requests = svc.stats().requests - before
        svc.close()
        expired = [
            e for e in done
            if isinstance(e, IngressShedError) and e.reason == "expired"
        ]
        assert expired, done
        assert st.shed.get("expired", 0) == len(expired)
        # expired-in-queue requests never reached the backend service
        assert backend_requests == 5 - len(expired)

    def test_mid_solve_timeout_still_propagates(self, system):
        L, b = system
        svc = slow_service(0.1)
        svc.solve(L, b)

        async def main():
            cfg = one_class(limit=4, deadline_s=0.05, backpressure_s=0.0)
            async with AsyncSolveService(svc, config=cfg) as ing:
                with pytest.raises(ServiceTimeoutError):
                    await ing.submit(L, b)
                return ing.stats()

        st = run(main())
        svc.close()
        assert st.timeouts == 1
        assert st.shed.get("expired", 0) == 0

    def test_backpressure_waits_instead_of_shedding(self, system):
        """With a backpressure budget longer than the drain time, a
        submit to a full queue waits and then gets admitted."""
        L, b = system
        svc = slow_service(0.02)

        async def main():
            cfg = one_class(limit=1, backpressure_s=2.0, max_inflight=1)
            async with AsyncSolveService(svc, config=cfg) as ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b))
                    for _ in range(4)
                ]
                done = await asyncio.gather(*tasks, return_exceptions=True)
                return done, ing.stats()

        done, st = run(main())
        svc.close()
        assert not any(isinstance(d, BaseException) for d in done)
        assert st.completed == 4
        assert st.backpressure_waits >= 1

    def test_close_without_drain_sheds_queue(self, system):
        L, b = system
        svc = slow_service(0.1)

        async def main():
            cfg = one_class(limit=8, backpressure_s=0.0, max_inflight=1)
            ing = AsyncSolveService(svc, config=cfg)
            tasks = []
            async with ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b))
                    for _ in range(4)
                ]
                await asyncio.sleep(0.02)
                await ing.close(drain=False)
            done = await asyncio.gather(*tasks, return_exceptions=True)
            return done, ing.stats()

        done, st = run(main())
        svc.close()
        shutdown = [
            e for e in done
            if isinstance(e, IngressShedError) and e.reason == "shutdown"
        ]
        assert shutdown
        assert st.shed.get("shutdown", 0) == len(shutdown)

    def test_drain_close_completes_everything(self, system):
        L, b = system
        svc = slow_service(0.02)

        async def main():
            cfg = one_class(limit=16, backpressure_s=0.0, max_inflight=2)
            ing = AsyncSolveService(svc, config=cfg)
            async with ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b))
                    for _ in range(6)
                ]
                await asyncio.sleep(0.01)
            # context exit drains: every future already terminal
            done = await asyncio.gather(*tasks, return_exceptions=True)
            return done, ing.stats()

        done, st = run(main())
        assert not any(isinstance(d, BaseException) for d in done)
        assert st.completed == 6
        # nothing leaked an admission permit in the backend
        assert svc.admission_available == svc.config.queue_limit
        svc.close()


class TestObservabilityWiring:
    def _metric(self, obs, name):
        return obs.metrics_dict().get(name, {}).get("samples", [])

    def test_ingress_metric_families_populate(self, system):
        L, b = system
        obs = Observability()
        svc = SolveService(ServiceConfig(max_workers=2, obs=obs))

        async def main():
            async with AsyncSolveService(svc) as ing:
                await asyncio.gather(*[
                    ing.submit(L, b, priority="interactive", tenant="t")
                    for _ in range(3)
                ])

        run(main())
        svc.close()
        admitted = self._metric(obs, "repro_ingress_admitted_total")
        assert any(
            s["labels"] == {"class": "interactive", "tenant": "t"}
            and s["value"] == 3
            for s in admitted
        )
        dispatched = self._metric(obs, "repro_ingress_dispatched_total")
        assert any(
            s["labels"] == {"class": "interactive"} and s["value"] == 3
            for s in dispatched
        )
        delay = obs.metrics_dict()["repro_ingress_queue_delay_seconds"]
        assert any(
            s["labels"] == {"class": "interactive"} and s["count"] == 3
            for s in delay["series"]
        )
        depth = self._metric(obs, "repro_ingress_queue_depth")
        assert any(
            s["labels"] == {"class": "interactive"} and s["value"] == 0
            for s in depth
        )

    def test_sheds_reach_metrics_and_slo(self, system):
        L, b = system
        obs = Observability()
        svc = SolveService(
            ServiceConfig(max_workers=1, obs=obs),
            fault_injector=FaultInjector(solve_delay_s=0.05),
        )

        async def main():
            cfg = one_class(limit=1, backpressure_s=0.0, max_inflight=1)
            async with AsyncSolveService(svc, config=cfg) as ing:
                tasks = [
                    asyncio.create_task(ing.submit(L, b, tenant="t"))
                    for _ in range(6)
                ]
                await asyncio.gather(*tasks, return_exceptions=True)

        run(main())
        svc.close()
        sheds = self._metric(obs, "repro_ingress_sheds_total")
        assert any(
            s["labels"]["reason"] == "admission" and s["value"] >= 1
            for s in sheds
        )
        # sheds land in the flight recorder as non-ok outcomes
        frames = [
            f for f in obs.recorder.frames()
            if str(f.get("outcome", "")).startswith("shed:")
        ]
        assert frames

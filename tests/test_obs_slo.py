"""Units for the SLO engine: policy validation, incremental burn-rate
math, edge-triggered multi-window alerting, and the alert sink."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    AlertSink,
    MetricsRegistry,
    SLOEngine,
    SLOPolicy,
)


def _policy(**kw) -> SLOPolicy:
    base = dict(name="p", objective_s=0.01, target=0.9,
                window=10, fast_window=2)
    base.update(kw)
    return SLOPolicy(**base)


class TestSLOPolicy:
    def test_budget_and_matches(self):
        p = _policy(target=0.95, tenant="acme")
        assert p.budget == pytest.approx(0.05)
        assert p.matches("acme") and not p.matches("beta")
        assert _policy(tenant=None).matches("anyone")

    @pytest.mark.parametrize("kw", [
        dict(name=""),
        dict(objective_s=0.0),
        dict(objective_s=-1.0),
        dict(target=0.0),
        dict(target=1.0),
        dict(window=0),
        dict(fast_window=0),
        dict(fast_window=11),       # exceeds window=10
        dict(burn_threshold=0.0),
        dict(latency="cpu"),
    ])
    def test_rejects_bad_parameters(self, kw):
        with pytest.raises(ValueError):
            _policy(**kw)

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine([_policy(), _policy()])


class TestBurnRate:
    def test_burn_is_bad_fraction_over_budget(self):
        engine = SLOEngine([_policy(target=0.9, window=10, fast_window=10)])
        for bad in (True, False, False, True):
            engine.observe(tenant="t", wall_s=0.1 if bad else 0.0,
                           sim_s=0.0)
        s = engine.status()[0]
        # 2 bad of 4 observed, budget 0.1 -> burn 5.0 on both windows.
        assert s["slow_burn"] == pytest.approx(5.0)
        assert s["fast_burn"] == pytest.approx(5.0)
        assert s["n_breaches"] == 2

    def test_windows_slide_incrementally(self):
        engine = SLOEngine([_policy(target=0.5, window=4, fast_window=2)])
        # Two breaches, then four good requests push them out entirely.
        for wall in (0.1, 0.1, 0.0, 0.0, 0.0, 0.0):
            engine.observe(tenant="t", wall_s=wall, sim_s=0.0)
        s = engine.status()[0]
        assert s["slow_burn"] == 0.0 and s["fast_burn"] == 0.0
        assert s["budget_remaining"] == 1.0
        assert s["n_breaches"] == 2  # lifetime count is not windowed

    def test_budget_remaining_clamps_at_zero(self):
        engine = SLOEngine([_policy(target=0.9, window=4, fast_window=4)])
        for _ in range(4):
            engine.observe(tenant="t", wall_s=1.0, sim_s=0.0)
        assert engine.status()[0]["budget_remaining"] == 0.0

    def test_sim_latency_policy_judges_sim_time(self):
        engine = SLOEngine([_policy(latency="sim", objective_s=1e-4)])
        engine.observe(tenant="t", wall_s=10.0, sim_s=1e-6)  # wall ignored
        assert engine.status()[0]["n_breaches"] == 0
        engine.observe(tenant="t", wall_s=0.0, sim_s=1e-3)
        assert engine.status()[0]["n_breaches"] == 1

    def test_failed_request_breaches_regardless_of_latency(self):
        engine = SLOEngine([_policy()])
        engine.observe(tenant="t", wall_s=0.0, sim_s=0.0, ok=False)
        assert engine.status()[0]["n_breaches"] == 1


class TestAlerting:
    def test_alert_fires_once_per_excursion_and_rearms(self):
        engine = SLOEngine(
            [_policy(target=0.5, window=8, fast_window=2)]
        )
        fired = []
        # Two breaches -> one alert at the second observation (the fast
        # window must fill first), not one alert per breaching request.
        for i, wall in enumerate((0.1, 0.1, 0.1)):
            fired += engine.observe(tenant="t", wall_s=wall, sim_s=0.0,
                                    trace_id=100 + i)
        assert len(fired) == 1
        alert = fired[0]
        assert alert.seq == 2 and alert.n_observed == 2
        assert alert.trace_id == 101
        assert alert.fast_burn >= 1.0 and alert.slow_burn >= 1.0
        # Two good requests clear the fast window: the policy re-arms...
        for _ in range(2):
            assert engine.observe(tenant="t", wall_s=0.0, sim_s=0.0) == []
        # ...and a fresh excursion fires a second alert.
        fired2 = []
        for _ in range(2):
            fired2 += engine.observe(tenant="t", wall_s=0.1, sim_s=0.0)
        assert len(fired2) == 1
        assert engine.status()[0]["alerts_fired"] == 2

    def test_no_alert_before_fast_window_fills(self):
        engine = SLOEngine([_policy(target=0.5, window=8, fast_window=4)])
        # A single catastrophic first request must not page anyone.
        assert engine.observe(tenant="t", wall_s=9.0, sim_s=0.0) == []

    def test_tenant_scoping(self):
        engine = SLOEngine([
            _policy(name="acme", tenant="acme", target=0.5,
                    window=4, fast_window=2),
            _policy(name="all", target=0.5, window=4, fast_window=2),
        ])
        for _ in range(2):
            fired = engine.observe(tenant="beta", wall_s=0.1, sim_s=0.0)
        # beta traffic trips the global policy but never the acme one.
        assert [a.policy for a in fired] == ["all"]
        by_name = {s["policy"]: s for s in engine.status()}
        assert by_name["acme"]["n_observed"] == 0
        assert by_name["all"]["n_observed"] == 2

    def test_metrics_bound_registry_updates(self):
        reg = MetricsRegistry()
        engine = SLOEngine(
            [_policy(target=0.5, window=4, fast_window=2)]
        ).bind(reg)
        engine.bind(reg)  # idempotent: no duplicate registration
        for wall in (0.1, 0.0, 0.0):
            engine.observe(tenant="t", wall_s=wall, sim_s=0.0)
        assert reg.get("repro_slo_requests_total").value(
            policy="p", verdict="breach") == 1
        assert reg.get("repro_slo_requests_total").value(
            policy="p", verdict="good") == 2
        assert reg.get("repro_slo_alerts_total").value(policy="p") == 1
        assert reg.get("repro_slo_burn_rate").value(
            policy="p", window="fast") == 0.0  # both breaches slid out
        assert reg.get("repro_slo_burn_rate").value(
            policy="p", window="slow") == pytest.approx((1 / 3) / 0.5)
        # 1 breach of 3 retained against a 0.5 budget: 1/3 unspent.
        assert reg.get("repro_slo_budget_remaining").value(
            policy="p") == pytest.approx(1.0 - (1 / 3) / 0.5)

    def test_render_marks_firing_policies(self):
        engine = SLOEngine([_policy(target=0.5, window=4, fast_window=2)])
        for _ in range(2):
            engine.observe(tenant="t", wall_s=0.1, sim_s=0.0)
        assert "FIRING" in engine.render()


class TestAlertSink:
    def test_sink_appends_jsonl_and_calls_back(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        seen = []
        sink = AlertSink(callback=seen.append, jsonl_path=path)
        engine = SLOEngine(
            [_policy(target=0.5, window=4, fast_window=2)], sink=sink
        )
        for i in range(2):
            engine.observe(tenant="t", wall_s=0.1, sim_s=0.0, trace_id=i)
        assert len(sink) == 1 and seen == sink.alerts
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["policy"] == "p" and rec["seq"] == 2
        assert rec["trace_id"] == 1
        assert "ALERT p" in sink.alerts[0].render()
        sink.clear()
        assert len(sink) == 0

"""Cross-kernel cost-model invariants.

These are the properties that make the simulated timings trustworthy as
a *comparison* instrument: monotonicity in work, consistency across
precisions and devices, and insensitivity of numerics to the device.
"""

import numpy as np
import pytest

from repro.core.solver import (
    CuSparseSolver,
    RecursiveBlockSolver,
    SyncFreeSolver,
)
from repro.gpu.device import TITAN_RTX, TITAN_RTX_SCALED, TITAN_X_SCALED
from repro.kernels import (
    CuSparseLikeKernel,
    LevelSetKernel,
    SPMV_KERNELS,
    SyncFreeKernel,
)
from repro.matrices.generators import layered_random

from conftest import random_lower, random_square

SOLVERS = [CuSparseSolver, SyncFreeSolver, RecursiveBlockSolver]
KERNELS = [LevelSetKernel, SyncFreeKernel, CuSparseLikeKernel]


def big_lower(n=20000, seed=0):
    sizes = np.full(10, n // 10, dtype=np.int64)
    return layered_random(
        sizes, nnz_per_row=7.0, rng=np.random.default_rng(seed), locality=0.05
    )


class TestMonotonicity:
    @pytest.mark.parametrize("cls", SOLVERS)
    def test_more_nnz_not_faster(self, cls):
        sparse = layered_random(
            np.full(6, 2000, dtype=np.int64), 3.0, np.random.default_rng(1)
        )
        dense = layered_random(
            np.full(6, 2000, dtype=np.int64), 20.0, np.random.default_rng(1)
        )
        b = np.ones(12000)
        _, r_sparse = cls(device=TITAN_RTX_SCALED).solve(sparse, b)
        _, r_dense = cls(device=TITAN_RTX_SCALED).solve(dense, b)
        assert r_dense.time_s > r_sparse.time_s

    @pytest.mark.parametrize("cls", SOLVERS)
    def test_bigger_matrix_not_faster(self, cls):
        small, big = big_lower(8000, seed=2), big_lower(32000, seed=2)
        _, rs = cls(device=TITAN_RTX_SCALED).solve(small, np.ones(small.n_rows))
        _, rb = cls(device=TITAN_RTX_SCALED).solve(big, np.ones(big.n_rows))
        assert rb.time_s > rs.time_s


class TestDeviceConsistency:
    @pytest.mark.parametrize("cls", SOLVERS)
    def test_faster_device_not_slower(self, cls):
        L = big_lower(24000, seed=3)
        b = np.ones(L.n_rows)
        _, on_x = cls(device=TITAN_X_SCALED).solve(L, b)
        _, on_rtx = cls(device=TITAN_RTX_SCALED).solve(L, b)
        assert on_rtx.time_s <= on_x.time_s * 1.02

    @pytest.mark.parametrize("cls", SOLVERS)
    def test_numerics_device_independent(self, cls):
        L = random_lower(300, 0.04, seed=4)
        b = np.ones(300)
        x1, _ = cls(device=TITAN_X_SCALED).solve(L, b)
        x2, _ = cls(device=TITAN_RTX).solve(L, b)
        assert np.array_equal(x1, x2)


class TestPrecisionConsistency:
    @pytest.mark.parametrize("cls", SOLVERS)
    def test_float32_not_slower(self, cls):
        L = big_lower(24000, seed=5)
        b = np.ones(L.n_rows)
        _, r64 = cls(device=TITAN_RTX_SCALED).solve(L, b)
        _, r32 = cls(device=TITAN_RTX_SCALED).solve(
            L.astype(np.float32), b.astype(np.float32)
        )
        assert r32.time_s <= r64.time_s * 1.001


class TestReportConsistency:
    @pytest.mark.parametrize("kernel_cls", KERNELS)
    def test_flops_follow_nnz(self, kernel_cls, medium_lower):
        _, rep = kernel_cls().solve_system(
            medium_lower, np.ones(medium_lower.n_rows), TITAN_RTX_SCALED
        )
        assert rep.flops == 2.0 * medium_lower.nnz

    @pytest.mark.parametrize("name", list(SPMV_KERNELS))
    def test_spmv_time_positive_and_finite(self, name):
        A = random_square(200, 0.05, seed=6)
        kernel = SPMV_KERNELS[name]()
        Ain = A.to_dcsr() if kernel.wants_dcsr else A
        rep = kernel.run(Ain, np.ones(200), np.zeros(200), TITAN_RTX_SCALED)
        assert np.isfinite(rep.time_s) and rep.time_s > 0

    @pytest.mark.parametrize("cls", SOLVERS)
    def test_gflops_consistent_with_time(self, cls, medium_lower):
        _, rep = cls(device=TITAN_RTX_SCALED).solve(
            medium_lower, np.ones(medium_lower.n_rows)
        )
        assert rep.gflops == pytest.approx(rep.flops / rep.time_s / 1e9)

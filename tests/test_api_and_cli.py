"""Tests for the one-call API, inspection tools, and the CLI."""

import numpy as np
import pytest

from repro.api import SolveResult, solve_triangular
from repro.analysis.inspect import describe_plan, level_histogram, spy
from repro.cli import build_parser, main
from repro.core.solver import (
    LevelSetSolver,
    RecursiveBlockSolver,
    SOLVERS,
    available_methods,
    register_solver,
    unregister_solver,
)
from repro.errors import NotTriangularError
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED
from repro.gpu.report import SolveReport
from repro.kernels import solve_serial

from conftest import random_lower, random_square


class TestSolveTriangular:
    def test_lower_autodetect(self, rng):
        L = random_lower(120, 0.05, seed=1)
        b = rng.standard_normal(120)
        x, report = solve_triangular(L, b)
        assert np.allclose(x, solve_serial(L, b), rtol=1e-9)
        assert report.method == "recursive-block"

    def test_upper_autodetect(self, rng):
        U = random_lower(100, 0.05, seed=2).transpose()
        b = rng.standard_normal(100)
        x, _ = solve_triangular(U, b, method="cusparse")
        assert np.allclose(U.to_dense() @ x, b, atol=1e-8)

    def test_explicit_orientation(self, rng):
        L = random_lower(80, 0.08, seed=3)
        b = rng.standard_normal(80)
        x, _ = solve_triangular(L, b, lower=True, method="syncfree")
        assert np.allclose(L.matvec(x), b, atol=1e-9)

    def test_rejects_general_matrix(self):
        A = random_square(20, 0.5, seed=4)
        with pytest.raises(NotTriangularError):
            solve_triangular(A, np.ones(20))

    def test_rejects_unknown_method(self, small_lower):
        with pytest.raises(ValueError):
            solve_triangular(small_lower, np.ones(small_lower.n_rows),
                             method="magic")

    def test_solver_options_forwarded(self, rng):
        L = random_lower(150, 0.04, seed=5)
        b = rng.standard_normal(150)
        x, _ = solve_triangular(L, b, depth=2, reorder=False)
        assert np.allclose(L.matvec(x), b, atol=1e-9)

    def test_returns_named_result(self, rng):
        L = random_lower(90, 0.06, seed=7)
        b = rng.standard_normal(90)
        res = solve_triangular(L, b)
        assert isinstance(res, SolveResult)
        assert isinstance(res.report, SolveReport)
        assert res.method == "recursive-block"
        assert not res.cache_hit and not res.fallback
        # Tuple compatibility: unpacks exactly like the old (x, report).
        x, report = res
        assert x is res.x and report is res.report

    def test_rejects_unknown_option(self, small_lower):
        with pytest.raises(ValueError, match="dpeth.*valid options.*depth"):
            solve_triangular(small_lower, np.ones(small_lower.n_rows), dpeth=2)

    def test_rejects_option_for_wrong_method(self, small_lower):
        # ``depth`` belongs to recursive-block, not to the baselines.
        with pytest.raises(ValueError, match="depth"):
            solve_triangular(small_lower, np.ones(small_lower.n_rows),
                             method="levelset", depth=2)

    @pytest.mark.parametrize("method", ["levelset", "syncfree", "recursive-block"])
    def test_upper_mirror_matches_dense_solve(self, rng, method):
        """Permutation round-trip: the mirrored solve equals numpy's."""
        U = random_lower(70, 0.08, seed=8).transpose()
        b = rng.standard_normal(70)
        res = solve_triangular(U, b, method=method)
        expected = np.linalg.solve(U.to_dense(), b)
        assert np.allclose(res.x, expected, rtol=1e-8, atol=1e-10)


class TestSolverRegistry:
    def test_available_methods_lists_builtins(self):
        methods = available_methods()
        assert "recursive-block" in methods and "levelset" in methods
        assert methods == list(SOLVERS)

    def test_register_and_use(self, rng):
        class Custom(LevelSetSolver):
            method = "registry-test"

        register_solver("registry-test", Custom)
        try:
            assert "registry-test" in available_methods()
            L = random_lower(60, 0.1, seed=9)
            b = rng.standard_normal(60)
            res = solve_triangular(L, b, method="registry-test")
            assert np.allclose(L.matvec(res.x), b, atol=1e-9)
        finally:
            unregister_solver("registry-test")
        assert "registry-test" not in available_methods()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("levelset", LevelSetSolver)

    def test_builtin_not_replaceable_or_removable(self):
        with pytest.raises(ValueError, match="built in"):
            register_solver("levelset", LevelSetSolver, replace=True)
        with pytest.raises(ValueError, match="built in"):
            unregister_solver("recursive-block")

    def test_interface_check(self):
        class NotASolver:
            pass

        with pytest.raises(TypeError, match="prepare"):
            register_solver("bogus", NotASolver)
        with pytest.raises(TypeError):
            register_solver("bogus", object())  # not even a class

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register_solver("", LevelSetSolver)

    def test_unregister_unknown(self):
        with pytest.raises(KeyError):
            unregister_solver("never-registered")


class TestInspect:
    def test_spy_shape(self, small_lower):
        art = spy(small_lower, width=20)
        lines = art.splitlines()
        assert len(lines) == 22  # border + 20 + border
        assert all(len(l) == 22 for l in lines)

    def test_spy_lower_triangular_pattern(self):
        L = CSRMatrix.from_dense(np.tril(np.ones((64, 64))))
        art = spy(L, width=16)
        rows = art.splitlines()[1:-1]
        # upper-right corner empty, lower-left dense
        assert rows[0][-2] == " "
        assert rows[-1][1] != " "

    def test_spy_empty(self):
        assert " " in spy(CSRMatrix.empty(10, 10), width=8)

    def test_level_histogram(self, medium_lower):
        text = level_histogram(medium_lower)
        assert "level sets" in text
        assert "#" in text

    def test_describe_plan(self, medium_lower):
        prepared = RecursiveBlockSolver(device=TITAN_RTX_SCALED, depth=2).prepare(
            medium_lower
        )
        text = describe_plan(prepared.plan)
        assert "triangles" in text
        assert "tri " in text and "spmv" in text

    def test_describe_plan_truncates(self, medium_lower):
        prepared = RecursiveBlockSolver(device=TITAN_RTX_SCALED, depth=4).prepare(
            medium_lower
        )
        text = describe_plan(prepared.plan, max_segments=3)
        assert "more segments" in text


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "titan_rtx_scaled" in out and "recursive-block" in out

    def test_suite(self, capsys):
        assert main(["suite", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "kkt_wide_a" in out and "nlevels" in out

    def test_solve_suite_matrix(self, capsys):
        assert main(["solve", "kkt_mid_a", "--scale", "0.05",
                     "--method", "recursive-block", "--plan"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out and "plan[recursive-block]" in out

    def test_solve_mtx_file(self, tmp_path, capsys):
        from repro.matrices.io import write_matrix_market

        L = random_lower(40, 0.2, seed=6)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, L)
        assert main(["solve", str(path), "--method", "syncfree"]) == 0
        assert "syncfree" in capsys.readouterr().out

    def test_solve_unknown_matrix(self):
        with pytest.raises(SystemExit):
            main(["solve", "no_such_matrix_anywhere"])

    def test_solve_unknown_matrix_message(self):
        with pytest.raises(SystemExit, match="unknown matrix"):
            main(["solve", "no_such_matrix_anywhere"])

    def test_solve_unparsable_file_message(self, tmp_path):
        bad = tmp_path / "bad.mtx"
        bad.write_text("this is not a MatrixMarket file\n")
        with pytest.raises(SystemExit, match="could not parse"):
            main(["solve", str(bad)])

    def test_serve_replays_workload(self, capsys):
        assert main(["serve", "--requests", "6", "--matrices", "2",
                     "--scale", "0.02", "--workers", "2", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "service stats" in out
        assert "hits" in out and "speedup" in out

    def test_serve_writes_json(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        assert main(["serve", "--requests", "5", "--matrices", "2",
                     "--scale", "0.02", "--json", str(path)]) == 0
        import json

        stats = json.loads(path.read_text())
        assert stats["requests"] == 5
        assert stats["cache_misses"] == 2 and stats["cache_hits"] == 3

    def test_calibrate_quick(self, capsys):
        assert main(["calibrate", "--quick", "--rows", "256"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_experiment_table1_2(self, capsys):
        assert main(["experiment", "table1_2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["solve", "x", "--spy", "--levels"])
        assert args.spy and args.levels

"""Depth rule and partition-boundary tests (§3.4 last paragraph)."""

import numpy as np
import pytest

from repro.core.planner import choose_depth, split_boundaries
from repro.gpu.device import TITAN_RTX, TITAN_RTX_SCALED, TITAN_X


class TestChooseDepth:
    def test_paper_rule_on_titan_rtx(self):
        """On the full Titan RTX the smallest block must stay >= 92160 rows
        (20 x 4608), so a 16.2M-row matrix splits ~7 deep."""
        min_rows = 20 * TITAN_RTX.cuda_cores
        assert min_rows == 92160
        depth = choose_depth(16_240_000, TITAN_RTX)
        assert 16_240_000 / 2**depth >= min_rows
        assert 16_240_000 / 2 ** (depth + 1) < min_rows

    def test_small_matrix_no_split(self):
        assert choose_depth(1000, TITAN_RTX) == 0

    def test_scaled_device_matches_scaled_matrices(self):
        """1/50-scale device + 1/50-scale matrix = same depth as paper."""
        d_paper = choose_depth(16_240_000, TITAN_RTX)
        d_scaled = choose_depth(16_240_000 // 50, TITAN_RTX_SCALED)
        assert abs(d_paper - d_scaled) <= 1

    def test_monotone_in_n(self):
        depths = [choose_depth(n, TITAN_RTX_SCALED) for n in (2_000, 20_000, 200_000)]
        assert depths == sorted(depths)

    def test_row_factor_override(self):
        assert choose_depth(10_000, TITAN_RTX, row_factor=0.01) > choose_depth(
            10_000, TITAN_RTX, row_factor=20.0
        )

    def test_max_depth_cap(self):
        assert choose_depth(10**9, TITAN_RTX_SCALED, row_factor=1e-6) <= 10

    def test_titan_x_smaller_blocks(self):
        """Fewer cores -> smaller saturation size -> deeper splits."""
        assert choose_depth(2_000_000, TITAN_X) >= choose_depth(
            2_000_000, TITAN_RTX
        )


class TestSplitBoundaries:
    def test_even(self):
        assert split_boundaries(12, 4).tolist() == [0, 3, 6, 9, 12]

    def test_remainder_spread(self):
        b = split_boundaries(10, 4)
        sizes = np.diff(b)
        assert b[0] == 0 and b[-1] == 10
        assert sizes.max() - sizes.min() <= 1

    def test_more_segments_than_rows(self):
        b = split_boundaries(3, 8)
        assert b[-1] == 3 and np.all(np.diff(b) >= 1)

    def test_single_segment(self):
        assert split_boundaries(7, 1).tolist() == [0, 7]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_boundaries(5, 0)

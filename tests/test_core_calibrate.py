"""Calibration-sweep tests (Figure 5 procedure)."""

import numpy as np
import pytest

from repro.core.adaptive import PAPER_THRESHOLDS
from repro.core.calibrate import (
    CalibrationResult,
    _square_block,
    calibrate_spmv,
    calibrate_sptrsv,
    run_calibration,
)
from repro.gpu.device import TITAN_RTX_SCALED

DEV = TITAN_RTX_SCALED


@pytest.fixture(scope="module")
def quick_cal():
    return run_calibration(DEV, quick=True)


class TestSquareBlockGenerator:
    def test_empty_ratio_honoured(self):
        rng = np.random.default_rng(0)
        A = _square_block(500, 4.0, 0.8, rng)
        empty = np.count_nonzero(A.row_counts() == 0)
        assert empty / 500 == pytest.approx(0.8, abs=0.05)

    def test_density_honoured(self):
        rng = np.random.default_rng(1)
        A = _square_block(500, 6.0, 0.0, rng)
        assert A.nnz / 500 == pytest.approx(6.0, rel=0.2)


class TestSweeps:
    def test_sptrsv_grid_covers_cells(self):
        grid = calibrate_sptrsv(
            DEV, n_rows=256, nnz_row_grid=(3.0, 8.0), nlevels_grid=(2, 16)
        )
        assert set(grid) == {(3.0, 2), (3.0, 16), (8.0, 2), (8.0, 16)}
        for scores in grid.values():
            assert set(scores) == {"levelset", "syncfree", "cusparse"}
            assert all(v > 0 for v in scores.values())

    def test_nlevels_beyond_n_skipped(self):
        grid = calibrate_sptrsv(
            DEV, n_rows=8, nnz_row_grid=(3.0,), nlevels_grid=(2, 1024)
        )
        assert (3.0, 1024) not in grid

    def test_spmv_grid(self):
        grid = calibrate_spmv(
            DEV, n_rows=256, nnz_row_grid=(2.0, 16.0), empty_grid=(0.0, 0.9)
        )
        assert len(grid) == 4
        for scores in grid.values():
            assert set(scores) == {
                "scalar-csr", "vector-csr", "scalar-dcsr", "vector-dcsr"
            }


class TestResult:
    def test_best_lookup(self, quick_cal):
        cell = next(iter(quick_cal.sptrsv))
        best = quick_cal.best_sptrsv(cell)
        assert best in quick_cal.sptrsv[cell]

    def test_heatmaps_render(self, quick_cal):
        tri = quick_cal.ascii_heatmap("sptrsv")
        sq = quick_cal.ascii_heatmap("spmv")
        assert "legend" in tri and "legend" in sq

    def test_thresholds_derivable(self, quick_cal):
        th = quick_cal.derive_thresholds(PAPER_THRESHOLDS)
        assert th.tri_cusparse_nlevels > 0
        assert 0 < th.spmv_scalar_empty <= 1.0

    def test_sample_count(self, quick_cal):
        assert quick_cal.n_samples > 10


class TestExpectedShape:
    """The Figure 5 qualitative structure against our kernels."""

    @pytest.fixture(scope="class")
    def cal(self):
        return run_calibration(DEV, n_rows=2048)

    def test_levelset_wins_shallow(self, cal):
        wins = sum(
            cal.best_sptrsv((nr, nl)) == "levelset"
            for (nr, nl) in cal.sptrsv
            if nl <= 8 and nr >= 12
        )
        total = sum(1 for (nr, nl) in cal.sptrsv if nl <= 8 and nr >= 12)
        assert wins > total * 0.6

    def test_cusparse_wins_deep(self, cal):
        wins = sum(
            cal.best_sptrsv((nr, nl)) == "cusparse"
            for (nr, nl) in cal.sptrsv
            if nl >= 256 and nr >= 3
        )
        total = sum(1 for (nr, nl) in cal.sptrsv if nl >= 256 and nr >= 3)
        assert wins > total * 0.7

    def test_syncfree_wins_thin_deep(self, cal):
        col = [nl for (nr, nl) in cal.sptrsv if nr == 2.0 and nl >= 64]
        wins = sum(cal.best_sptrsv((2.0, nl)) == "syncfree" for nl in col)
        assert wins > len(col) * 0.6

    def test_dcsr_wins_when_empty(self, cal):
        wins = sum(
            cal.best_spmv((nr, er)).endswith("dcsr")
            for (nr, er) in cal.spmv
            if er >= 0.8
        )
        total = sum(1 for (nr, er) in cal.spmv if er >= 0.8)
        assert wins > total * 0.7

    def test_vector_wins_dense_rows(self, cal):
        wins = sum(
            cal.best_spmv((nr, er)).startswith("vector")
            for (nr, er) in cal.spmv
            if nr >= 16
        )
        total = sum(1 for (nr, er) in cal.spmv if nr >= 16)
        assert wins > total * 0.6

    def test_scalar_wins_sparse_full_rows(self, cal):
        wins = sum(
            cal.best_spmv((nr, er)) == "scalar-csr"
            for (nr, er) in cal.spmv
            if nr <= 2 and er <= 0.3
        )
        total = sum(1 for (nr, er) in cal.spmv if nr <= 2 and er <= 0.3)
        assert wins > total * 0.6

"""Level-merging optimization tests (Naumov's fused small levels)."""

import numpy as np
import pytest

from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import LevelSetKernel, merge_small_levels, prepare_lower, solve_serial
from repro.kernels.sweep import build_level_schedule
from repro.matrices.generators import chain_matrix, layered_random

DEV = TITAN_RTX_SCALED


class TestMergeGrouping:
    def test_groups_cover_all_levels(self):
        L = chain_matrix(500, rng=np.random.default_rng(0))
        sched = build_level_schedule(prepare_lower(L))
        gp = merge_small_levels(sched, DEV)
        assert gp[0] == 0 and gp[-1] == sched.nlevels
        assert np.all(np.diff(gp) >= 1)

    def test_deep_thin_matrix_merges_heavily(self):
        L = chain_matrix(2000, rng=np.random.default_rng(1))
        sched = build_level_schedule(prepare_lower(L))
        gp = merge_small_levels(sched, DEV)
        assert len(gp) - 1 < sched.nlevels / 5

    def test_wide_levels_not_merged(self):
        L = layered_random(
            np.full(6, 2000, dtype=np.int64), 4.0, np.random.default_rng(2)
        )
        sched = build_level_schedule(prepare_lower(L))
        gp = merge_small_levels(sched, DEV)
        # every level is several waves wide -> one group per level
        assert len(gp) - 1 == sched.nlevels

    def test_budget_respected(self):
        L = chain_matrix(1000, rng=np.random.default_rng(3))
        sched = build_level_schedule(prepare_lower(L))
        gp = merge_small_levels(sched, DEV, waves=2.0)
        budget = 2.0 * DEV.cuda_cores
        for g in range(len(gp) - 1):
            rows = int(sched.level_rows[gp[g] : gp[g + 1]].sum())
            # a group may exceed the budget only by its last level
            if gp[g + 1] - gp[g] > 1:
                rows_minus_last = int(
                    sched.level_rows[gp[g] : gp[g + 1] - 1].sum()
                )
                assert rows_minus_last <= budget


class TestMergedKernel:
    def test_numerics_identical(self, rng):
        L = chain_matrix(800, rng=np.random.default_rng(4))
        b = rng.standard_normal(800)
        x_ref = solve_serial(L, b)
        x, _ = LevelSetKernel(merge_levels=True).solve_system(L, b, DEV)
        assert np.allclose(x, x_ref, rtol=1e-10)

    def test_merging_speeds_up_deep_matrices(self):
        L = chain_matrix(3000, rng=np.random.default_rng(5))
        b = np.ones(3000)
        _, plain = LevelSetKernel().solve_system(L, b, DEV)
        _, merged = LevelSetKernel(merge_levels=True).solve_system(L, b, DEV)
        assert merged.time_s < plain.time_s / 1.5
        assert merged.launches < plain.launches

    def test_merging_harmless_on_shallow(self):
        L = layered_random(
            np.full(3, 1500, dtype=np.int64), 5.0, np.random.default_rng(6)
        )
        b = np.ones(4500)
        _, plain = LevelSetKernel().solve_system(L, b, DEV)
        _, merged = LevelSetKernel(merge_levels=True).solve_system(L, b, DEV)
        assert merged.time_s <= plain.time_s * 1.05

    def test_report_flags(self):
        L = chain_matrix(200, rng=np.random.default_rng(7))
        _, rep = LevelSetKernel(merge_levels=True).solve_system(
            L, np.ones(200), DEV
        )
        assert rep.detail["merged"] is True

"""Span tracer: nesting, thread isolation, error capture, JSONL export."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import SPAN_SCHEMA_FIELDS, Tracer


def test_nesting_builds_parent_child_tree():
    tr = Tracer()
    with tr.span("request", method="recursive-block"):
        with tr.span("prepare"):
            with tr.span("pack") as sp:
                sp.set(n_segments=3)
        with tr.span("solve"):
            pass
    spans = {s.name: s for s in tr.spans()}
    assert set(spans) == {"request", "prepare", "pack", "solve"}
    root = spans["request"]
    assert root.parent_id is None
    assert spans["prepare"].parent_id == root.span_id
    assert spans["solve"].parent_id == root.span_id
    assert spans["pack"].parent_id == spans["prepare"].span_id
    # One trace; every span belongs to it.
    assert {s.trace_id for s in spans.values()} == {root.trace_id}
    assert spans["pack"].attrs["n_segments"] == 3
    assert tr.open_depth() == 0


def test_sibling_roots_get_distinct_traces():
    tr = Tracer()
    with tr.span("a"):
        pass
    with tr.span("b"):
        pass
    roots = tr.roots()
    assert [s.name for s in roots] == ["a", "b"]
    assert roots[0].trace_id != roots[1].trace_id


def test_span_timing_is_monotonic_and_ordered():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    outer, inner = (
        {s.name: s for s in tr.spans()}[k] for k in ("outer", "inner")
    )
    assert outer.start_s <= inner.start_s
    assert inner.end_s <= outer.end_s
    assert outer.duration_s >= inner.duration_s >= 0.0


def test_exception_marks_error_and_still_closes():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("request"):
            with tr.span("solve"):
                raise ValueError("boom")
    spans = {s.name: s for s in tr.spans()}
    assert spans["solve"].error == "ValueError"
    assert spans["request"].error == "ValueError"
    assert tr.open_depth() == 0


def test_current_and_record_span():
    tr = Tracer()
    assert tr.current() is None
    with tr.span("request") as sp:
        assert tr.current() is sp
        queued = tr.record_span("queue_wait", 1.0, 1.25)
        assert queued.parent_id == sp.span_id
        assert queued.trace_id == sp.trace_id
    assert tr.current() is None
    waits = [s for s in tr.spans() if s.name == "queue_wait"]
    assert len(waits) == 1 and waits[0].duration_s == pytest.approx(0.25)


def test_thread_local_stacks_do_not_adopt_foreign_parents():
    tr = Tracer()
    barrier = threading.Barrier(4)

    def request(i: int) -> None:
        barrier.wait()
        with tr.span("request", worker=i):
            with tr.span("child", worker=i):
                pass

    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(request, range(4)))

    roots = tr.roots()
    assert len(roots) == 4
    assert len({r.trace_id for r in roots}) == 4
    by_id = {s.span_id: s for s in tr.spans()}
    for s in tr.spans():
        if s.parent_id is None:
            continue
        parent = by_id[s.parent_id]
        # A child's parent was opened by the same worker on the same
        # thread — never another request's span.
        assert parent.attrs["worker"] == s.attrs["worker"]
        assert parent.thread == s.thread
        assert s.trace_id == parent.trace_id


def test_jsonl_schema_and_roundtrip():
    tr = Tracer()
    with tr.span("request", method="row-block"):
        with tr.span("solve"):
            pass
    lines = tr.to_jsonl().splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        for key in SPAN_SCHEMA_FIELDS:
            assert key in record, key
    # export_jsonl writes the same records and reports the count.
    import io

    buf = io.StringIO()
    assert tr.export_jsonl(buf) == 2
    assert buf.getvalue().strip().splitlines() == lines


def test_max_spans_drops_and_reports():
    tr = Tracer(max_spans=3)
    for _ in range(5):
        with tr.span("s"):
            pass
    assert len(tr.spans()) == 3
    assert tr.dropped == 2
    assert "2 spans dropped" in tr.render_tree()
    tr.clear()
    assert tr.spans() == [] and tr.dropped == 0


def test_render_tree_indents_children():
    tr = Tracer()
    with tr.span("request"):
        with tr.span("solve"):
            pass
    lines = tr.render_tree().splitlines()
    assert lines[0].startswith("request")
    assert lines[1].startswith("  solve")

"""Improved recursive-block structure tests (§3.3, Figure 3)."""

import numpy as np
import pytest

from repro.core.blocked_matrix import (
    build_improved_recursive_plan,
    recursive_levelset_reorder,
)
from repro.formats.triangular import is_lower_triangular
from repro.graph import compute_levels, invert_permutation
from repro.graph.reorder import is_permutation
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import solve_serial
from repro.matrices.generators import layered_random, powerlaw_matrix

from conftest import random_lower

DEV = TITAN_RTX_SCALED


class TestRecursiveReorder:
    def test_returns_valid_permutation(self, medium_lower):
        perm, sweeps, _ = recursive_levelset_reorder(medium_lower, 2)
        assert is_permutation(perm)
        assert sweeps >= 1

    def test_stays_lower_triangular(self, medium_lower):
        perm, _, _ = recursive_levelset_reorder(medium_lower, 3)
        assert is_lower_triangular(medium_lower.permute_symmetric(perm))

    def test_top_level_is_level_sorted(self, medium_lower):
        perm, _, _ = recursive_levelset_reorder(medium_lower, 0)
        lv = compute_levels(medium_lower)
        assert np.all(np.diff(lv[perm]) >= 0)

    def test_halves_internally_level_sorted(self, medium_lower):
        """Figure 3(c): each triangular half is sorted by its own levels."""
        perm, _, _ = recursive_levelset_reorder(medium_lower, 1)
        P = medium_lower.permute_symmetric(perm)
        n = P.n_rows
        mid = n // 2
        for lo, hi in ((0, mid), (mid, n)):
            sub = P.extract_block(lo, hi, lo, hi)
            lv = compute_levels(sub)
            assert np.all(np.diff(lv) >= 0)

    def test_reorder_nnz_accounting(self, medium_lower):
        """Each recursion level sweeps every entry at most once, so the
        processed-nnz counter is ~(depth+1) * nnz (squares drop out of
        deeper sweeps, hence <=)."""
        _, n0, _ = recursive_levelset_reorder(medium_lower, 0)
        _, n2, _ = recursive_levelset_reorder(medium_lower, 2)
        assert n0 == medium_lower.nnz
        assert medium_lower.nnz < n2 <= 3 * medium_lower.nnz

    def test_reorder_concentrates_nnz_in_squares(self):
        """Figure 3's 8 -> 11 effect: the level-set reorder moves more
        nonzeros into the square parts."""
        L = layered_random(
            np.array([150, 120, 90, 60, 40, 20]),
            6.0,
            np.random.default_rng(5),
        )
        with_reorder = build_improved_recursive_plan(L, 2, DEV, reorder=True)
        without = build_improved_recursive_plan(L, 2, DEV, reorder=False)
        assert with_reorder.nnz_in_squares >= without.nnz_in_squares


class TestLevelAlignedSplits:
    @pytest.fixture
    def uneven(self):
        # Level sizes chosen so midpoints fall inside levels.
        return layered_random(
            np.array([70, 50, 90, 30, 110, 40, 60]),
            5.0,
            np.random.default_rng(11),
        )

    def test_splits_land_on_level_boundaries(self, uneven):
        _, _, splits = recursive_levelset_reorder(uneven, 2, align_levels=True)
        blocked = build_improved_recursive_plan(
            uneven, 2, DEV, align_levels=True, keep_permuted=True
        )
        lv = compute_levels(blocked.permuted)
        for (lo, hi), mid in splits.items():
            if (lo, hi) == (0, uneven.n_rows):
                # top-level split: permuted matrix is globally level-sorted
                assert lv[mid] != lv[mid - 1]

    def test_alignment_changes_split(self, uneven):
        _, _, aligned = recursive_levelset_reorder(uneven, 1, align_levels=True)
        _, _, mid = recursive_levelset_reorder(uneven, 1, align_levels=False)
        n = uneven.n_rows
        assert mid[(0, n)] == n // 2
        assert aligned[(0, n)] != n // 2  # snapped to a boundary

    def test_solution_correct(self, uneven, rng):
        b = rng.standard_normal(uneven.n_rows)
        x_ref = solve_serial(uneven, b)
        blocked = build_improved_recursive_plan(
            uneven, 2, DEV, align_levels=True
        )
        x, _ = blocked.plan.solve(b, DEV)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)

    def test_aligned_leaves_are_shallower(self, uneven):
        """Snapping to level boundaries cannot deepen leaf triangles."""
        plain = build_improved_recursive_plan(uneven, 2, DEV)
        aligned = build_improved_recursive_plan(
            uneven, 2, DEV, align_levels=True
        )

        def total_leaf_levels(blocked):
            from repro.kernels.sweep import build_level_schedule

            total = 0
            for seg in blocked.plan.tri_segments:
                sched = getattr(seg.aux, "sched", None)
                if sched is not None:
                    total += sched.nlevels
                else:
                    total += 1  # diagonal leaf
            return total

        assert total_leaf_levels(aligned) <= total_leaf_levels(plain)


class TestImprovedPlan:
    def test_solution_correct_with_reorder(self, medium_lower, rng):
        b = rng.standard_normal(medium_lower.n_rows)
        x_ref = solve_serial(medium_lower, b)
        blocked = build_improved_recursive_plan(medium_lower, 3, DEV)
        x, _ = blocked.plan.solve(b, DEV)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("reorder,use_dcsr", [(True, False), (False, True),
                                                  (False, False)])
    def test_solution_correct_all_variants(self, medium_lower, rng, reorder, use_dcsr):
        b = rng.standard_normal(medium_lower.n_rows)
        x_ref = solve_serial(medium_lower, b)
        blocked = build_improved_recursive_plan(
            medium_lower, 2, DEV, reorder=reorder, use_dcsr=use_dcsr
        )
        x, _ = blocked.plan.solve(b, DEV)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)

    def test_reconstruction_roundtrip(self, medium_lower):
        """Figure 3(d): the stored blocks reassemble the permuted matrix."""
        blocked = build_improved_recursive_plan(
            medium_lower, 2, DEV, keep_permuted=True
        )
        assert np.allclose(
            blocked.reconstruct_dense(), blocked.permuted.to_dense()
        )

    def test_blocks_inventory_consistent(self, medium_lower):
        blocked = build_improved_recursive_plan(medium_lower, 2, DEV)
        assert blocked.nnz_in_squares + blocked.nnz_in_triangles == medium_lower.nnz
        kinds = {b.kind for b in blocked.blocks}
        assert kinds <= {"triangle", "square"}
        for blk in blocked.blocks:
            if blk.kind == "triangle":
                assert blk.fmt == "csc"
                assert blk.row_lo == blk.col_lo and blk.row_hi == blk.col_hi
            else:
                assert blk.fmt in ("csr", "dcsr")
                assert blk.col_hi == blk.row_lo  # square reads x above it

    def test_dcsr_used_for_hypersparse_squares(self):
        L = powerlaw_matrix(600, 3.0, np.random.default_rng(7))
        blocked = build_improved_recursive_plan(L, 2, DEV, use_dcsr=True)
        fmts = {b.fmt for b in blocked.blocks if b.kind == "square"}
        # power-law blocks leave many empty rows; at least one DCSR expected
        assert "dcsr" in fmts

    def test_dcsr_disabled(self):
        L = powerlaw_matrix(600, 3.0, np.random.default_rng(7))
        blocked = build_improved_recursive_plan(L, 2, DEV, use_dcsr=False)
        assert all(b.fmt != "dcsr" for b in blocked.blocks if b.kind == "square")

    def test_reorder_charged_in_preprocessing(self, medium_lower):
        with_r = build_improved_recursive_plan(medium_lower, 2, DEV, reorder=True)
        without = build_improved_recursive_plan(medium_lower, 2, DEV, reorder=False)
        assert (
            with_r.plan.preprocess_report.detail["reorder_s"]
            > without.plan.preprocess_report.detail["reorder_s"]
        )

    def test_perm_identity_when_no_reorder(self, medium_lower):
        blocked = build_improved_recursive_plan(medium_lower, 2, DEV, reorder=False)
        assert np.array_equal(blocked.perm, np.arange(medium_lower.n_rows))
        assert blocked.plan.perm is None

    def test_solution_in_original_order(self, medium_lower, rng):
        """The permutation must be transparent to the caller."""
        b = rng.standard_normal(medium_lower.n_rows)
        blocked = build_improved_recursive_plan(medium_lower, 3, DEV)
        x, _ = blocked.plan.solve(b, DEV)
        inv = invert_permutation(blocked.perm)
        assert np.allclose(medium_lower.matvec(x), b, atol=1e-8)
        assert len(inv) == medium_lower.n_rows

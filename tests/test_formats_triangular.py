"""Unit tests for triangular utilities (the §4.1 matrix preparation)."""

import numpy as np
import pytest

from repro.errors import NotTriangularError, ShapeMismatchError, SingularMatrixError
from repro.formats import (
    CSRMatrix,
    is_lower_triangular,
    is_upper_triangular,
    lower_triangular_from,
    split_strict_and_diag,
)
from repro.formats.triangular import upper_to_lower_mirror

from conftest import random_lower, random_square


class TestPredicates:
    def test_lower_detection(self):
        assert is_lower_triangular(CSRMatrix.from_dense(np.tril(np.ones((4, 4)))))
        assert not is_lower_triangular(CSRMatrix.from_dense(np.ones((4, 4))))

    def test_upper_detection(self):
        assert is_upper_triangular(CSRMatrix.from_dense(np.triu(np.ones((4, 4)))))
        assert not is_upper_triangular(CSRMatrix.from_dense(np.tril(np.ones((4, 4)), -1)))

    def test_diagonal_is_both(self):
        D = CSRMatrix.from_dense(np.eye(5))
        assert is_lower_triangular(D) and is_upper_triangular(D)


class TestLowerTriangularFrom:
    def test_keeps_lower_part(self):
        A = random_square(20, 0.3, seed=1)
        L = lower_triangular_from(A)
        dense = A.to_dense()
        expect = np.tril(dense)
        idx = np.arange(20)
        expect[idx, idx] = np.where(expect[idx, idx] != 0, expect[idx, idx], 1.0)
        assert np.allclose(L.to_dense(), expect)

    def test_fills_missing_diagonal(self):
        A = CSRMatrix.from_dense(np.tril(np.ones((5, 5)), -1))
        L = lower_triangular_from(A, unit_fill=2.5)
        assert np.allclose(L.diagonal(), 2.5)

    def test_replaces_explicit_zero_diagonal(self):
        d = np.tril(np.ones((3, 3)))
        d[1, 1] = 0.0
        rows, cols = np.nonzero(np.tril(np.ones((3, 3))))
        vals = d[rows, cols]
        A = CSRMatrix.from_coo(rows, cols, vals, (3, 3), sum_duplicates=False)
        L = lower_triangular_from(A)
        assert L.diagonal()[1] == 1.0

    def test_requires_square(self):
        with pytest.raises(ShapeMismatchError):
            lower_triangular_from(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_result_has_diagonal_last_per_row(self):
        """Algorithm 1 divides by val[row_ptr[i+1]-1]; verify the layout."""
        L = lower_triangular_from(random_square(15, 0.4, seed=2))
        for i in range(15):
            cols, _ = L.row_slice(i)
            assert cols[-1] == i


class TestSplit:
    def test_split_reassembles(self, small_lower):
        strict, diag = split_strict_and_diag(small_lower)
        assert np.allclose(
            strict.to_dense() + np.diag(diag), small_lower.to_dense()
        )

    def test_split_rejects_nontriangular(self):
        with pytest.raises(NotTriangularError):
            split_strict_and_diag(CSRMatrix.from_dense(np.ones((3, 3))))

    def test_split_rejects_singular(self):
        d = np.tril(np.ones((3, 3)))
        d[2, 2] = 0.0
        A = CSRMatrix.from_dense(d)
        with pytest.raises(SingularMatrixError):
            split_strict_and_diag(A)

    def test_strict_part_has_no_diagonal(self, small_lower):
        strict, _ = split_strict_and_diag(small_lower)
        assert np.allclose(np.diag(strict.to_dense()), 0.0)


class TestUpperMirror:
    def test_mirror_solves_upper_system(self):
        rng = np.random.default_rng(3)
        U = random_lower(30, 0.1, seed=4).transpose()
        dense_u = U.to_dense()
        b = rng.standard_normal(30)
        L, perm = upper_to_lower_mirror(U)
        assert is_lower_triangular(L)
        # Solve L y = b[perm], then x = y mapped back.
        from repro.kernels import solve_serial

        y = solve_serial(L, b[perm])
        x = np.empty_like(y)
        x[perm] = y
        assert np.allclose(dense_u @ x, b, atol=1e-8)

    def test_mirror_rejects_lower(self, small_lower):
        with pytest.raises(NotTriangularError):
            upper_to_lower_mirror(small_lower)

"""Property-based scheduler invariants over hundreds of generated plans.

Every (family, method, nseg, n_devices) combination must satisfy:

* each segment is assigned to exactly one device and starts only after
  every DAG predecessor (plus its cross-device transfer) finished;
* same-device executions never overlap; device busy time is conserved;
* the schedule's x-transfer volume equals an *independent* recomputation
  of the §3.2 cross-shard x reads from the plan's interval bounds;
* ``n_devices=1`` is bit-identical to the single-device compiled path,
  and so is every multi-device schedule.

The matrix generators are the fuzz harness families, so the plans cover
hypersparse/DCSR, deep chains, PDE grids, bands, and real ILU factors.
"""

import numpy as np
import pytest

from repro.core.plan import SpMVSegment, TriSegment
from repro.core.solver import SOLVERS
from repro.dist import (
    SYNC_MODES,
    DistributedPlan,
    available_schedulers,
    schedule_dag,
)
from repro.gpu.device import TITAN_RTX_SCALED
from repro.validate.fuzz import FAMILIES

#: the full conformance axis: every registered scheduler x sync mode.
#: Built at collection time from the registry, so an externally
#: registered policy is automatically held to the same invariants.
SCHED_SYNC = [
    (s, y) for s in available_schedulers() for y in SYNC_MODES
]

#: (method, options) rotations — every block partitioner plus level-set
METHODS = (
    ("column-block", {"nseg": 8}),
    ("column-block", {"nseg": 5}),
    ("row-block", {"nseg": 8}),
    ("recursive-block", {"depth": 3}),
)
N_SEEDS = 52  # 52 seeds x 4 methods = 208 generated plans
FAMILY_NAMES = sorted(FAMILIES)


def _expected_x_transfers(plan, assignment) -> int:
    """Independent §3.2 accounting: for every SpMV placed off-device
    from a triangular producer, the x fragment it loads is the overlap
    of its column window with that tri's rows.  Mirrors Table 2's
    "x loads from other parts" counting, not the DAG builder's edge
    enumeration."""
    total = 0
    for j, seg in enumerate(plan.segments):
        if not isinstance(seg, SpMVSegment):
            continue
        for i in range(j):
            tri = plan.segments[i]
            if not isinstance(tri, TriSegment):
                continue
            lo = max(seg.col_lo, tri.lo)
            hi = min(seg.col_hi, tri.hi)
            if lo < hi and assignment[i] != assignment[j]:
                total += hi - lo
    return total


def _plan_cases():
    cases = []
    for seed in range(N_SEEDS):
        family = FAMILY_NAMES[seed % len(FAMILY_NAMES)]
        for mi, (method, options) in enumerate(METHODS):
            cases.append((family, seed, method, mi, options))
    return cases


@pytest.mark.parametrize(
    "family,seed,method,mi,options",
    _plan_cases(),
    ids=lambda v: str(v) if not isinstance(v, dict) else "",
)
def test_schedule_invariants_on_generated_plan(family, seed, method, mi, options):
    rng = np.random.default_rng([0xD157, seed, mi])
    size = int(rng.integers(40, 120))
    L = FAMILIES[family](rng, size)
    prepared = SOLVERS[method](device=TITAN_RTX_SCALED, **options).prepare(L)
    b = rng.standard_normal(L.n_rows)
    x_single, _ = prepared.solve(b)

    for n_devices in (1, 2, 3, 4):
        dp = DistributedPlan.from_prepared(prepared, n_devices)
        costs = [r.time_s for r in dp._reports]

        for scheduler, sync in SCHED_SYNC:
            if scheduler == "eft" and sync == "p2p":
                sched = dp.schedule  # the executor's own default
            else:
                sched = schedule_dag(
                    dp.dag, costs, n_devices, dp.interconnect,
                    method=dp.plan.method, scheduler=scheduler, sync=sync,
                )
            tag = (family, seed, method, n_devices, scheduler, sync)

            # All scheduler invariants: unique assignment,
            # DAG-respecting starts, no same-device overlap, conserved
            # busy time, transfer accounting equal to the DAG's
            # cross-device payload — for every registered policy under
            # every sync mode.
            sched.validate(dp.dag, dp.interconnect)
            assert dp.dag.check_topological(sched.order)
            assert sched.scheduler == scheduler and sched.sync == sync

            # Independent recomputation of the cross-shard x reads from
            # the plan's interval bounds (no DAG involved).
            assert sched.x_transfer_items == _expected_x_transfers(
                dp.plan, sched.assignment
            ), tag

            if n_devices == 1:
                assert not sched.transfers
                if sync == "p2p":
                    assert sched.makespan_s == pytest.approx(
                        sched.total_cost_s, rel=1e-12
                    )
                else:  # barrier rounds only add latency on one device
                    assert sched.makespan_s >= sched.total_cost_s - 1e-15

            # Numerics: running *this* schedule's order through the
            # executor's compiled steps stays bit-identical to the
            # single-device path — the scheduler/sync choice may move
            # the simulated clock, never the floating point.
            if dp.compiled is not None and dp.compiled.pure:
                x = dp.compiled.solve_ordered(b, sched.order)
                assert np.array_equal(x, x_single), tag

        # Full executor round trip (schedule + numerics + report) under
        # the default policy, for every device count.
        x, report = dp.solve(b)
        assert np.array_equal(x, x_single), (family, seed, method, n_devices)
        assert report.time_s == pytest.approx(dp.schedule.makespan_s)

    # The executor end to end under every non-default combination, at
    # one representative multi-device count: bit-identity plus the
    # report's scheduler/sync stamps.
    for scheduler, sync in SCHED_SYNC:
        dp = DistributedPlan.from_prepared(
            prepared, 3, scheduler=scheduler, sync=sync
        )
        x, report = dp.solve(b)
        assert np.array_equal(x, x_single), (family, seed, scheduler, sync)
        assert report.detail["scheduler"] == scheduler
        assert report.detail["sync"] == sync

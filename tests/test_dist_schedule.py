"""Units for repro.dist: DAG derivation, 2-D tiling, the scheduler
registry and its policies, both sync-mode timelines, the hierarchical
interconnect, the sharded executor, and the serve/CLI integration."""

import dataclasses

import numpy as np
import pytest

from repro.cli import main
from repro.core.dag import build_segment_dag
from repro.core.plan import SpMVSegment, TriSegment
from repro.core.solver import SOLVERS
from repro.dist import (
    SCHEDULERS,
    SYNC_MODES,
    DistributedPlan,
    GreedyEFTScheduler,
    Interconnect,
    Scheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    schedule_dag,
    tile_plan,
    unregister_scheduler,
)
from repro.errors import ValidationError
from repro.gpu.device import TITAN_RTX_SCALED
from repro.obs import Observability
from repro.serve import ServiceConfig, SolveService

from conftest import random_lower


def _prepare(method="column-block", n=300, seed=7, **options):
    L = random_lower(n, density=0.05, seed=seed)
    solver = SOLVERS[method](device=TITAN_RTX_SCALED, **options)
    return L, solver.prepare(L)


class TestInterconnect:
    def test_for_device_scales_with_memory_bandwidth(self):
        link = Interconnect.for_device(TITAN_RTX_SCALED)
        assert link.bandwidth_gbps == pytest.approx(
            0.5 * TITAN_RTX_SCALED.mem_bandwidth_gbps
        )

    def test_transfer_time_formula(self):
        link = Interconnect(bandwidth_gbps=8.0, latency_s=1e-6, item_bytes=8)
        # 0 items is a pure synchronization: latency only.
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1000) == pytest.approx(
            1e-6 + 1000 * 8 / 8.0e9
        )

    def test_flat_link_ignores_endpoints(self):
        link = Interconnect(bandwidth_gbps=8.0, latency_s=1e-6)
        assert link.same_node(0, 7)
        assert link.transfer_time(500, 0, 7) == link.transfer_time(500)

    def test_hierarchical_two_tiers(self):
        link = Interconnect(
            bandwidth_gbps=8.0, latency_s=1e-6, item_bytes=8,
            node_size=4, inter_bandwidth_gbps=0.8, inter_latency_s=1e-5,
        )
        # devices 0-3 share node 0, 4-7 share node 1
        assert link.same_node(0, 3) and link.same_node(4, 7)
        assert not link.same_node(3, 4)
        intra = link.transfer_time(1000, 0, 3)
        inter = link.transfer_time(1000, 3, 4)
        assert intra == pytest.approx(1e-6 + 1000 * 8 / 8.0e9)
        assert inter == pytest.approx(1e-5 + 1000 * 8 / 0.8e9)
        assert inter > intra
        # endpoint-less pricing falls back to the intra tier
        assert link.transfer_time(1000) == intra

    def test_hierarchical_constructor_and_sync_latency(self):
        link = Interconnect.hierarchical(TITAN_RTX_SCALED, node_size=4)
        assert link.node_size == 4
        assert link.inter_bandwidth_gbps < link.bandwidth_gbps
        # one node syncs over the fast tier; spanning nodes pays the
        # slow tier's round trip
        assert link.sync_latency(4) == pytest.approx(2 * link.latency_s)
        assert link.sync_latency(8) == pytest.approx(
            2 * link.inter_latency_s
        )
        with pytest.raises(ValueError):
            Interconnect.hierarchical(TITAN_RTX_SCALED, node_size=0)

    def test_inter_tier_defaults_fall_back_to_intra(self):
        link = Interconnect(bandwidth_gbps=8.0, latency_s=1e-6, node_size=2)
        assert link.transfer_time(100, 0, 3) == link.transfer_time(100, 0, 1)


class TestSegmentDAG:
    def test_column_block_chain_before_tiling(self):
        # §3.1 column-block aggregates each strip's update into one tall
        # SpMV, so the untiled DAG is a serial chain: every segment
        # depends on its predecessor.
        _, prepared = _prepare(nseg=8)
        dag = build_segment_dag(prepared.plan)
        for j in range(1, dag.n_segments):
            assert dag.preds[j], f"segment {j} has no predecessor"
        assert dag.check_topological(range(dag.n_segments))

    def test_edge_payloads_match_intervals(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        for e in dag.edges:
            src, dst = plan.segments[e.src], plan.segments[e.dst]
            if e.kind == "x":
                # x edges: tri output read by a later SpMV.
                assert isinstance(src, TriSegment)
                assert isinstance(dst, SpMVSegment)
                assert e.lo >= max(src.lo, dst.col_lo)
                assert e.hi <= min(src.hi, dst.col_hi)
                assert e.items == e.hi - e.lo
            elif e.kind == "war":
                assert e.items == 0

    def test_tri_waits_for_every_update_into_its_rows(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        for j, seg in enumerate(plan.segments):
            if not isinstance(seg, TriSegment):
                continue
            for i in range(j):
                other = plan.segments[i]
                if isinstance(other, SpMVSegment) and not (
                    other.row_hi <= seg.lo or other.row_lo >= seg.hi
                ):
                    assert i in dag.preds[j], (i, j)

    def test_critical_path_bounds(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        costs = [1.0] * dag.n_segments
        cp = dag.critical_path_s(costs)
        assert 0 < cp <= sum(costs)


class TestTilePlan:
    def test_splits_multi_part_spmvs(self):
        _, prepared = _prepare(nseg=8)
        tiled = tile_plan(prepared.plan)
        assert tiled is not prepared.plan
        assert tiled.n_spmv_segments > prepared.plan.n_spmv_segments
        # Triangular segments are shared, not copied.
        assert [id(s) for s in tiled.tri_segments] == [
            id(s) for s in prepared.plan.tri_segments
        ]
        # Same totals: tiling only re-slices rows, never drops entries.
        assert tiled.total_nnz == prepared.plan.total_nnz
        assert sum(s.n_rows for s in tiled.spmv_segments) <= sum(
            s.n_rows for s in prepared.plan.spmv_segments
        )  # zero-nnz slices are dropped

    def test_tiled_solution_is_bit_identical(self):
        L, prepared = _prepare(nseg=8)
        tiled = tile_plan(prepared.plan)
        b = np.random.default_rng(0).standard_normal(L.n_rows)
        x0, _ = prepared.plan.solve(b, TITAN_RTX_SCALED)
        x1, _ = tiled.solve(b, TITAN_RTX_SCALED)
        assert np.array_equal(x0, x1)

    def test_single_part_plan_is_returned_unchanged(self):
        _, prepared = _prepare(method="serial", n=64)
        assert tile_plan(prepared.plan) is prepared.plan


class TestScheduler:
    def _dag_costs(self, nseg=8):
        _, prepared = _prepare(nseg=nseg)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        rng = np.random.default_rng(42)
        costs = (rng.random(dag.n_segments) * 1e-5 + 1e-6).tolist()
        return dag, costs

    def test_single_device_makespan_is_total_cost(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        sched = schedule_dag(dag, costs, 1, link)
        assert sched.makespan_s == pytest.approx(sum(costs), rel=1e-12)
        assert sched.speedup() == pytest.approx(1.0)
        assert not sched.transfers
        sched.validate(dag, link)

    def test_multi_device_schedule_validates(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        for d in (2, 3, 4):
            sched = schedule_dag(dag, costs, d, link)
            sched.validate(dag, link)
            assert sched.makespan_s <= sum(costs) + 1e-15
            assert sched.makespan_s >= dag.critical_path_s(costs) - 1e-15

    def test_deterministic(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        a = schedule_dag(dag, costs, 3, link)
        b = schedule_dag(dag, costs, 3, link)
        assert a.as_dict() == b.as_dict()

    def test_rejects_bad_inputs(self):
        dag, costs = self._dag_costs()
        with pytest.raises(ValueError):
            schedule_dag(dag, costs, 0, Interconnect())
        with pytest.raises(ValueError):
            schedule_dag(dag, costs[:-1], 2, Interconnect())
        with pytest.raises(ValueError):
            schedule_dag(dag, costs, 2, Interconnect(), scheduler="nope")
        with pytest.raises(ValueError):
            schedule_dag(dag, costs, 2, Interconnect(), sync="nope")


def _wide_dag_costs(nseg=8, seed=7):
    """A tiled DAG with real parallel width plus its probe-free costs."""
    L = random_lower(300, density=0.05, seed=seed)
    prepared = SOLVERS["column-block"](
        device=TITAN_RTX_SCALED, nseg=nseg
    ).prepare(L)
    plan = tile_plan(prepared.plan)
    dag = build_segment_dag(plan)
    rng = np.random.default_rng(42)
    costs = (rng.random(dag.n_segments) * 1e-5 + 1e-6).tolist()
    return dag, costs


class TestSchedulerRegistry:
    def test_builtins_registered(self):
        assert available_schedulers() == ["eft", "lookahead-eft", "superstep"]
        for name in available_schedulers():
            assert get_scheduler(name).name == name

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            get_scheduler("does-not-exist")

    def test_register_and_unregister_external(self):
        class Favorite(Scheduler):
            name = "favorite-device"

            def place(self, dag, costs_s, n_devices, interconnect):
                return [0] * dag.n_segments

        register_scheduler("favorite-device", Favorite())
        try:
            assert "favorite-device" in available_schedulers()
            dag, costs = _wide_dag_costs()
            sched = schedule_dag(
                dag, costs, 3, Interconnect(), scheduler="favorite-device"
            )
            sched.validate(dag, Interconnect())
            assert sched.scheduler == "favorite-device"
            assert set(sched.assignment) == {0}
        finally:
            unregister_scheduler("favorite-device")
        assert "favorite-device" not in SCHEDULERS

    def test_duplicate_requires_replace(self):
        class Stub(Scheduler):
            name = "stub"

            def place(self, dag, costs_s, n_devices, interconnect):
                return [0] * dag.n_segments

        register_scheduler("stub", Stub())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheduler("stub", Stub())
            register_scheduler("stub", Stub(), replace=True)
        finally:
            unregister_scheduler("stub")

    def test_builtin_protected(self):
        with pytest.raises(ValueError, match="built in"):
            register_scheduler("eft", GreedyEFTScheduler())
        with pytest.raises(ValueError, match="built in"):
            unregister_scheduler("superstep")

    def test_rejects_bad_names_and_interfaces(self):
        with pytest.raises(ValueError):
            register_scheduler("", GreedyEFTScheduler())
        with pytest.raises(TypeError, match="Scheduler interface"):
            register_scheduler("bad", object())
        with pytest.raises(KeyError):
            unregister_scheduler("never-registered")


class TestSchedulingPolicies:
    def test_every_policy_validates_under_every_sync(self):
        dag, costs = _wide_dag_costs()
        link = Interconnect.hierarchical(TITAN_RTX_SCALED, node_size=2)
        for s in available_schedulers():
            for y in SYNC_MODES:
                sched = schedule_dag(
                    dag, costs, 4, link, scheduler=s, sync=y
                )
                sched.validate(dag, link)
                assert sched.scheduler == s and sched.sync == y
                assert dag.check_topological(sched.order)

    def test_p2p_default_matches_legacy_eft(self):
        # schedule_dag with no scheduler/sync arguments is the
        # pre-registry greedy EFT list scheduler, bit for bit.
        dag, costs = _wide_dag_costs()
        link = Interconnect()
        default = schedule_dag(dag, costs, 3, link)
        explicit = schedule_dag(
            dag, costs, 3, link, scheduler="eft", sync="p2p"
        )
        assert default.as_dict() == explicit.as_dict()
        assert default.scheduler == "eft" and default.sync == "p2p"

    def test_barrier_timeline_is_level_aligned(self):
        dag, costs = _wide_dag_costs()
        link = Interconnect()
        sched = schedule_dag(dag, costs, 3, link, sync="barrier")
        sched.validate(dag, link)
        # every segment starts at or after its level's superstep gate,
        # and no earlier level finishes after a later one starts on the
        # same device queue reset
        start = sched.start_s
        gates = []
        for level in dag.levels():
            gates.append(min(start[j] for j in level))
        assert gates == sorted(gates)
        # barrier rounds can only slow the clock relative to p2p
        p2p = schedule_dag(dag, costs, 3, link, sync="p2p")
        assert sched.makespan_s >= p2p.makespan_s - 1e-15

    def test_barrier_pays_sync_latency_between_levels(self):
        dag, costs = _wide_dag_costs()
        link = Interconnect()
        sched = schedule_dag(dag, costs, 1, link, sync="barrier")
        n_levels = len(dag.levels())
        expected = sum(costs) + (n_levels - 1) * link.sync_latency(1)
        assert sched.makespan_s == pytest.approx(expected, rel=1e-12)

    def test_superstep_balances_within_levels(self):
        dag, costs = _wide_dag_costs()
        sched = schedule_dag(
            dag, costs, 4, Interconnect(), scheduler="superstep"
        )
        # within each level the LPT rule keeps max/min device load tight:
        # no single reassignment can improve the balance
        for level in dag.levels():
            load = [0.0] * 4
            for j in level:
                load[sched.assignment[j]] += costs[j]
            busiest = max(range(4), key=lambda d: load[d])
            smallest = min(
                (costs[j] for j in level
                 if sched.assignment[j] == busiest),
                default=0.0,
            )
            assert load[busiest] - smallest <= min(load) + 1e-15

    def test_lookahead_never_worse_on_chain(self):
        # On a pure chain both EFT variants must serialize on one device.
        L = random_lower(150, density=0.04, seed=3)
        prepared = SOLVERS["column-block"](
            device=TITAN_RTX_SCALED, nseg=6
        ).prepare(L)
        dag = build_segment_dag(prepared.plan)  # untiled: serial chain
        costs = [1e-6] * dag.n_segments
        for s in ("eft", "lookahead-eft"):
            sched = schedule_dag(
                dag, costs, 4, Interconnect(), scheduler=s
            )
            assert len(set(sched.assignment)) == 1, s
            assert sched.makespan_s == pytest.approx(sum(costs))

    def test_schedulers_are_deterministic(self):
        dag, costs = _wide_dag_costs()
        link = Interconnect.hierarchical(TITAN_RTX_SCALED, node_size=2)
        for s in available_schedulers():
            for y in SYNC_MODES:
                a = schedule_dag(dag, costs, 4, link, scheduler=s, sync=y)
                b = schedule_dag(dag, costs, 4, link, scheduler=s, sync=y)
                assert a.as_dict() == b.as_dict(), (s, y)


class TestValidateStructuredErrors:
    def _valid_schedule(self):
        dag, costs = _wide_dag_costs()
        link = Interconnect()
        return dag, link, schedule_dag(dag, costs, 3, link)

    def test_assignment_device_out_of_range(self):
        dag, link, sched = self._valid_schedule()
        bad = dataclasses.replace(sched)
        bad.assignment = list(sched.assignment)
        bad.assignment[0] = 3  # devices are range(3)
        with pytest.raises(ValidationError) as exc_info:
            bad.validate(dag, link)
        err = exc_info.value
        assert err.kind == "schedule-devices"
        assert err.detail["n_devices"] == 3
        assert err.detail["bad_devices"] == [3]

    def test_negative_assignment_rejected(self):
        dag, link, sched = self._valid_schedule()
        bad = dataclasses.replace(sched)
        bad.assignment = list(sched.assignment)
        bad.assignment[-1] = -1
        with pytest.raises(ValidationError) as exc_info:
            bad.validate(dag, link)
        assert exc_info.value.detail["bad_devices"] == [-1]

    def test_transfer_endpoint_out_of_range(self):
        # A hand-built schedule whose transfer references a phantom
        # device must fail with the structured error, not an assert
        # (or worse, pass and explode inside the executor).
        dag, link, sched = self._valid_schedule()
        assert sched.transfers, "fixture needs at least one transfer"
        bad = dataclasses.replace(sched)
        bad.transfers = list(sched.transfers)
        t = bad.transfers[0]
        bad.transfers[0] = dataclasses.replace(t, dst=17)
        with pytest.raises(ValidationError) as exc_info:
            bad.validate(dag, link)
        err = exc_info.value
        assert err.kind == "schedule-devices"
        entry = err.detail["bad_transfers"][0]
        assert entry["dst"] == 17
        assert entry["producer"] == t.producer
        assert entry["consumer"] == t.consumer

    def test_valid_schedule_passes(self):
        dag, link, sched = self._valid_schedule()
        sched.validate(dag, link)  # no exception


class TestDistributedPlan:
    def test_bit_identical_to_single_device(self):
        L, prepared = _prepare(nseg=8)
        b = np.random.default_rng(1).standard_normal(L.n_rows)
        x1, _ = prepared.solve(b)
        for d in (1, 2, 4):
            dp = DistributedPlan.from_prepared(prepared, d)
            x, report = dp.solve(b)
            assert np.array_equal(x, x1), f"n_devices={d}"
            assert report.detail["n_devices"] == d

    def test_multi_rhs_bit_identical(self):
        L, prepared = _prepare(nseg=8)
        B = np.random.default_rng(2).standard_normal((L.n_rows, 5))
        prepared.solve_multi(B)  # capture pass at this width
        X1, _ = prepared.solve_multi(B)
        dp = DistributedPlan.from_prepared(prepared, 3)
        X, report = dp.solve_multi(B)
        assert np.array_equal(X, X1)
        assert report.detail["n_rhs"] == 5

    def test_report_detail_fields(self):
        _, prepared = _prepare(nseg=8)
        dp = DistributedPlan.from_prepared(prepared, 4)
        _, report = dp.solve(np.ones(prepared.plan.n))
        d = report.detail
        for key in ("n_devices", "makespan_s", "single_device_s", "speedup",
                    "critical_path_s", "occupancy", "device_busy_s",
                    "transfers", "transfer_x_items", "transfer_b_items",
                    "transfer_time_s"):
            assert key in d, key
        assert report.time_s == pytest.approx(d["makespan_s"])
        assert len(d["occupancy"]) == 4
        assert d["speedup"] == pytest.approx(
            d["single_device_s"] / d["makespan_s"]
        )

    def test_schedule_invariants_hold(self):
        _, prepared = _prepare(nseg=8)
        dp = DistributedPlan.from_prepared(prepared, 4)
        dp.schedule.validate(dp.dag, dp.interconnect)

    def test_rejects_bad_device_count_and_shape(self):
        _, prepared = _prepare(nseg=4)
        with pytest.raises(ValueError):
            DistributedPlan.from_prepared(prepared, 0)
        dp = DistributedPlan.from_prepared(prepared, 2)
        from repro.errors import ShapeMismatchError
        with pytest.raises(ShapeMismatchError):
            dp.solve(np.ones(prepared.plan.n + 1))
        with pytest.raises(ShapeMismatchError):
            dp.solve_multi(np.ones(prepared.plan.n))

    def test_observed_path_matches_and_exports_metrics(self):
        L, prepared = _prepare(nseg=8)
        b = np.random.default_rng(3).standard_normal(L.n_rows)
        # With observability active every executor takes the
        # instrumented plan path, so that is the bit-identity reference.
        with Observability().activate():
            x1, _ = prepared.solve(b)
        dp = DistributedPlan.from_prepared(prepared, 3)
        obs = Observability()
        with obs.activate():
            x, _ = dp.solve(b)
        assert np.array_equal(x, x1)
        m = obs.serve_metrics
        method = prepared.plan.method
        assert m.dist_solves.value(
            method=method, n_devices="3", scheduler="eft"
        ) == 1
        assert m.dist_sync_solves.value(sync="p2p", scheduler="eft") == 1
        assert m.traffic_mismatch.total() == 0
        # Per-device live counters sum to the plan-level accounting.
        from repro.analysis.traffic import measured_traffic
        tiled_b, tiled_x = measured_traffic(dp.plan)
        got_b = sum(
            m.b_writes.value(method=method, device=str(dev))
            for dev in range(3)
        )
        got_x = sum(
            m.x_loads.value(method=method, device=str(dev))
            for dev in range(3)
        )
        assert (got_b, got_x) == (tiled_b, tiled_x)
        assert m.dist_transfer_items.value(method=method, kind="x") == \
            dp.schedule.x_transfer_items


class TestServiceIntegration:
    def test_n_devices_routes_through_dist(self):
        L = random_lower(200, density=0.06, seed=11)
        b = np.random.default_rng(4).standard_normal(L.n_rows)
        with SolveService(method="column-block",
                          solver_options={"nseg": 8},
                          n_devices=3) as svc:
            res = svc.solve(L, b)
            entry = next(iter(svc.cache._entries.values()))
        assert entry.dist is not None
        assert res.report.detail["n_devices"] == 3
        # Bit-identical to the same prepared plan's single-device path.
        x1, _ = entry.prepared.solve(b)
        assert np.array_equal(res.x, x1)

    def test_single_device_service_attaches_no_dist(self):
        L = random_lower(120, density=0.08, seed=12)
        with SolveService(method="column-block",
                          solver_options={"nseg": 4}) as svc:
            svc.solve(L, np.ones(L.n_rows))
            entry = next(iter(svc.cache._entries.values()))
            assert entry.dist is None

    def test_rejects_nonpositive_device_count(self):
        with pytest.raises(ValueError):
            SolveService(ServiceConfig(n_devices=0))

    def test_obs_service_records_dist_metrics(self):
        L = random_lower(200, density=0.06, seed=13)
        obs = Observability()
        with SolveService(method="column-block",
                          solver_options={"nseg": 8},
                          n_devices=2, obs=obs) as svc:
            svc.solve(L, np.ones(L.n_rows))
        m = obs.serve_metrics
        assert m.dist_solves.value(
            method="column-block", n_devices="2", scheduler="eft"
        ) == 1
        assert m.requests_total.value(status="ok", tenant="default") == 1

    def test_service_scheduler_and_sync_route_through(self):
        L = random_lower(200, density=0.06, seed=14)
        b = np.random.default_rng(5).standard_normal(L.n_rows)
        obs = Observability()
        with SolveService(method="column-block",
                          solver_options={"nseg": 8},
                          n_devices=3, scheduler="superstep",
                          sync_mode="barrier", obs=obs) as svc:
            res = svc.solve(L, b)
            entry = next(iter(svc.cache._entries.values()))
        assert entry.dist.schedule.scheduler == "superstep"
        assert entry.dist.schedule.sync == "barrier"
        assert res.report.detail["scheduler"] == "superstep"
        assert res.report.detail["sync"] == "barrier"
        # still bit-identical to the single-device path
        x1, _ = entry.prepared.solve(b)
        assert np.array_equal(res.x, x1)
        m = obs.serve_metrics
        assert m.dist_solves.value(
            method="column-block", n_devices="3", scheduler="superstep"
        ) == 1
        assert m.dist_sync_solves.value(
            sync="barrier", scheduler="superstep"
        ) == 1

    def test_service_rejects_unknown_scheduler_and_sync(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SolveService(ServiceConfig(n_devices=2, scheduler="nope"))
        with pytest.raises(ValueError, match="unknown sync_mode"):
            SolveService(ServiceConfig(n_devices=2, sync_mode="nope"))


class TestCLI:
    def test_dist_check_smoke(self, capsys):
        assert main(["dist", "kkt_mid_a", "--scale", "0.05",
                     "--devices", "2", "--nseg", "16", "--check"]) == 0
        out = capsys.readouterr().out
        assert "schedule invariants OK" in out
        assert "bit-identical to single-device: True" in out

    def test_dist_scaling_experiment_registered(self, capsys):
        assert main(["experiment", "dist_scaling", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Strong scaling" in out

"""Units for repro.dist: DAG derivation, 2-D tiling, the list
scheduler, the sharded executor, and the serve/CLI integration."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.dag import build_segment_dag
from repro.core.plan import SpMVSegment, TriSegment
from repro.core.solver import SOLVERS
from repro.dist import DistributedPlan, Interconnect, schedule_dag, tile_plan
from repro.gpu.device import TITAN_RTX_SCALED
from repro.obs import Observability
from repro.serve import ServiceConfig, SolveService

from conftest import random_lower


def _prepare(method="column-block", n=300, seed=7, **options):
    L = random_lower(n, density=0.05, seed=seed)
    solver = SOLVERS[method](device=TITAN_RTX_SCALED, **options)
    return L, solver.prepare(L)


class TestInterconnect:
    def test_for_device_scales_with_memory_bandwidth(self):
        link = Interconnect.for_device(TITAN_RTX_SCALED)
        assert link.bandwidth_gbps == pytest.approx(
            0.5 * TITAN_RTX_SCALED.mem_bandwidth_gbps
        )

    def test_transfer_time_formula(self):
        link = Interconnect(bandwidth_gbps=8.0, latency_s=1e-6, item_bytes=8)
        # 0 items is a pure synchronization: latency only.
        assert link.transfer_time(0) == pytest.approx(1e-6)
        assert link.transfer_time(1000) == pytest.approx(
            1e-6 + 1000 * 8 / 8.0e9
        )


class TestSegmentDAG:
    def test_column_block_chain_before_tiling(self):
        # §3.1 column-block aggregates each strip's update into one tall
        # SpMV, so the untiled DAG is a serial chain: every segment
        # depends on its predecessor.
        _, prepared = _prepare(nseg=8)
        dag = build_segment_dag(prepared.plan)
        for j in range(1, dag.n_segments):
            assert dag.preds[j], f"segment {j} has no predecessor"
        assert dag.check_topological(range(dag.n_segments))

    def test_edge_payloads_match_intervals(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        for e in dag.edges:
            src, dst = plan.segments[e.src], plan.segments[e.dst]
            if e.kind == "x":
                # x edges: tri output read by a later SpMV.
                assert isinstance(src, TriSegment)
                assert isinstance(dst, SpMVSegment)
                assert e.lo >= max(src.lo, dst.col_lo)
                assert e.hi <= min(src.hi, dst.col_hi)
                assert e.items == e.hi - e.lo
            elif e.kind == "war":
                assert e.items == 0

    def test_tri_waits_for_every_update_into_its_rows(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        for j, seg in enumerate(plan.segments):
            if not isinstance(seg, TriSegment):
                continue
            for i in range(j):
                other = plan.segments[i]
                if isinstance(other, SpMVSegment) and not (
                    other.row_hi <= seg.lo or other.row_lo >= seg.hi
                ):
                    assert i in dag.preds[j], (i, j)

    def test_critical_path_bounds(self):
        _, prepared = _prepare(nseg=8)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        costs = [1.0] * dag.n_segments
        cp = dag.critical_path_s(costs)
        assert 0 < cp <= sum(costs)


class TestTilePlan:
    def test_splits_multi_part_spmvs(self):
        _, prepared = _prepare(nseg=8)
        tiled = tile_plan(prepared.plan)
        assert tiled is not prepared.plan
        assert tiled.n_spmv_segments > prepared.plan.n_spmv_segments
        # Triangular segments are shared, not copied.
        assert [id(s) for s in tiled.tri_segments] == [
            id(s) for s in prepared.plan.tri_segments
        ]
        # Same totals: tiling only re-slices rows, never drops entries.
        assert tiled.total_nnz == prepared.plan.total_nnz
        assert sum(s.n_rows for s in tiled.spmv_segments) <= sum(
            s.n_rows for s in prepared.plan.spmv_segments
        )  # zero-nnz slices are dropped

    def test_tiled_solution_is_bit_identical(self):
        L, prepared = _prepare(nseg=8)
        tiled = tile_plan(prepared.plan)
        b = np.random.default_rng(0).standard_normal(L.n_rows)
        x0, _ = prepared.plan.solve(b, TITAN_RTX_SCALED)
        x1, _ = tiled.solve(b, TITAN_RTX_SCALED)
        assert np.array_equal(x0, x1)

    def test_single_part_plan_is_returned_unchanged(self):
        _, prepared = _prepare(method="serial", n=64)
        assert tile_plan(prepared.plan) is prepared.plan


class TestScheduler:
    def _dag_costs(self, nseg=8):
        _, prepared = _prepare(nseg=nseg)
        plan = tile_plan(prepared.plan)
        dag = build_segment_dag(plan)
        rng = np.random.default_rng(42)
        costs = (rng.random(dag.n_segments) * 1e-5 + 1e-6).tolist()
        return dag, costs

    def test_single_device_makespan_is_total_cost(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        sched = schedule_dag(dag, costs, 1, link)
        assert sched.makespan_s == pytest.approx(sum(costs), rel=1e-12)
        assert sched.speedup() == pytest.approx(1.0)
        assert not sched.transfers
        sched.validate(dag, link)

    def test_multi_device_schedule_validates(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        for d in (2, 3, 4):
            sched = schedule_dag(dag, costs, d, link)
            sched.validate(dag, link)
            assert sched.makespan_s <= sum(costs) + 1e-15
            assert sched.makespan_s >= dag.critical_path_s(costs) - 1e-15

    def test_deterministic(self):
        dag, costs = self._dag_costs()
        link = Interconnect()
        a = schedule_dag(dag, costs, 3, link)
        b = schedule_dag(dag, costs, 3, link)
        assert a.as_dict() == b.as_dict()

    def test_rejects_bad_inputs(self):
        dag, costs = self._dag_costs()
        with pytest.raises(ValueError):
            schedule_dag(dag, costs, 0, Interconnect())
        with pytest.raises(ValueError):
            schedule_dag(dag, costs[:-1], 2, Interconnect())


class TestDistributedPlan:
    def test_bit_identical_to_single_device(self):
        L, prepared = _prepare(nseg=8)
        b = np.random.default_rng(1).standard_normal(L.n_rows)
        x1, _ = prepared.solve(b)
        for d in (1, 2, 4):
            dp = DistributedPlan.from_prepared(prepared, d)
            x, report = dp.solve(b)
            assert np.array_equal(x, x1), f"n_devices={d}"
            assert report.detail["n_devices"] == d

    def test_multi_rhs_bit_identical(self):
        L, prepared = _prepare(nseg=8)
        B = np.random.default_rng(2).standard_normal((L.n_rows, 5))
        prepared.solve_multi(B)  # capture pass at this width
        X1, _ = prepared.solve_multi(B)
        dp = DistributedPlan.from_prepared(prepared, 3)
        X, report = dp.solve_multi(B)
        assert np.array_equal(X, X1)
        assert report.detail["n_rhs"] == 5

    def test_report_detail_fields(self):
        _, prepared = _prepare(nseg=8)
        dp = DistributedPlan.from_prepared(prepared, 4)
        _, report = dp.solve(np.ones(prepared.plan.n))
        d = report.detail
        for key in ("n_devices", "makespan_s", "single_device_s", "speedup",
                    "critical_path_s", "occupancy", "device_busy_s",
                    "transfers", "transfer_x_items", "transfer_b_items",
                    "transfer_time_s"):
            assert key in d, key
        assert report.time_s == pytest.approx(d["makespan_s"])
        assert len(d["occupancy"]) == 4
        assert d["speedup"] == pytest.approx(
            d["single_device_s"] / d["makespan_s"]
        )

    def test_schedule_invariants_hold(self):
        _, prepared = _prepare(nseg=8)
        dp = DistributedPlan.from_prepared(prepared, 4)
        dp.schedule.validate(dp.dag, dp.interconnect)

    def test_rejects_bad_device_count_and_shape(self):
        _, prepared = _prepare(nseg=4)
        with pytest.raises(ValueError):
            DistributedPlan.from_prepared(prepared, 0)
        dp = DistributedPlan.from_prepared(prepared, 2)
        from repro.errors import ShapeMismatchError
        with pytest.raises(ShapeMismatchError):
            dp.solve(np.ones(prepared.plan.n + 1))
        with pytest.raises(ShapeMismatchError):
            dp.solve_multi(np.ones(prepared.plan.n))

    def test_observed_path_matches_and_exports_metrics(self):
        L, prepared = _prepare(nseg=8)
        b = np.random.default_rng(3).standard_normal(L.n_rows)
        # With observability active every executor takes the
        # instrumented plan path, so that is the bit-identity reference.
        with Observability().activate():
            x1, _ = prepared.solve(b)
        dp = DistributedPlan.from_prepared(prepared, 3)
        obs = Observability()
        with obs.activate():
            x, _ = dp.solve(b)
        assert np.array_equal(x, x1)
        m = obs.serve_metrics
        method = prepared.plan.method
        assert m.dist_solves.value(method=method, n_devices="3") == 1
        assert m.traffic_mismatch.total() == 0
        # Per-device live counters sum to the plan-level accounting.
        from repro.analysis.traffic import measured_traffic
        tiled_b, tiled_x = measured_traffic(dp.plan)
        got_b = sum(
            m.b_writes.value(method=method, device=str(dev))
            for dev in range(3)
        )
        got_x = sum(
            m.x_loads.value(method=method, device=str(dev))
            for dev in range(3)
        )
        assert (got_b, got_x) == (tiled_b, tiled_x)
        assert m.dist_transfer_items.value(method=method, kind="x") == \
            dp.schedule.x_transfer_items


class TestServiceIntegration:
    def test_n_devices_routes_through_dist(self):
        L = random_lower(200, density=0.06, seed=11)
        b = np.random.default_rng(4).standard_normal(L.n_rows)
        with SolveService(method="column-block",
                          solver_options={"nseg": 8},
                          n_devices=3) as svc:
            res = svc.solve(L, b)
            entry = next(iter(svc.cache._entries.values()))
        assert entry.dist is not None
        assert res.report.detail["n_devices"] == 3
        # Bit-identical to the same prepared plan's single-device path.
        x1, _ = entry.prepared.solve(b)
        assert np.array_equal(res.x, x1)

    def test_single_device_service_attaches_no_dist(self):
        L = random_lower(120, density=0.08, seed=12)
        with SolveService(method="column-block",
                          solver_options={"nseg": 4}) as svc:
            svc.solve(L, np.ones(L.n_rows))
            entry = next(iter(svc.cache._entries.values()))
            assert entry.dist is None

    def test_rejects_nonpositive_device_count(self):
        with pytest.raises(ValueError):
            SolveService(ServiceConfig(n_devices=0))

    def test_obs_service_records_dist_metrics(self):
        L = random_lower(200, density=0.06, seed=13)
        obs = Observability()
        with SolveService(method="column-block",
                          solver_options={"nseg": 8},
                          n_devices=2, obs=obs) as svc:
            svc.solve(L, np.ones(L.n_rows))
        m = obs.serve_metrics
        assert m.dist_solves.value(method="column-block", n_devices="2") == 1
        assert m.requests_total.value(status="ok", tenant="default") == 1


class TestCLI:
    def test_dist_check_smoke(self, capsys):
        assert main(["dist", "kkt_mid_a", "--scale", "0.05",
                     "--devices", "2", "--nseg", "16", "--check"]) == 0
        out = capsys.readouterr().out
        assert "schedule invariants OK" in out
        assert "bit-identical to single-device: True" in out

    def test_dist_scaling_experiment_registered(self, capsys):
        assert main(["experiment", "dist_scaling", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Strong scaling" in out

"""Cost-model primitive tests: monotonicity and limiting behaviour."""

import pytest

from repro.gpu.cost import CostModel
from repro.gpu.device import TITAN_RTX, TITAN_RTX_SCALED, TITAN_X


@pytest.fixture
def cost():
    return CostModel(TITAN_RTX)


class TestStream:
    def test_linear_in_bytes(self, cost):
        assert cost.stream_time(2e6) == pytest.approx(2 * cost.stream_time(1e6))

    def test_faster_device_is_faster(self):
        t_rtx = CostModel(TITAN_RTX).stream_time(1e9)
        t_x = CostModel(TITAN_X).stream_time(1e9)
        assert t_rtx < t_x

    def test_below_peak_bandwidth(self, cost):
        # one second of traffic at peak must take longer than a second
        assert cost.stream_time(TITAN_RTX.bandwidth_bytes) > 1.0


class TestCache:
    def test_resident_set_hits(self, cost):
        assert cost.cache_hit_fraction(1024) == 1.0

    def test_oversized_set_misses(self, cost):
        assert cost.cache_hit_fraction(TITAN_RTX.l2_bytes * 100) < 0.02

    def test_monotone_decreasing(self, cost):
        hits = [cost.cache_hit_fraction(ws) for ws in (1e4, 1e6, 1e8, 1e10)]
        assert hits == sorted(hits, reverse=True)

    def test_gather_more_expensive_than_stream_when_missing(self, cost):
        # 1M random 8-byte reads over a 1GB set vs 8MB streamed
        assert cost.gather_time(1e6, 8, 1e9) > cost.stream_time(8e6)

    def test_gather_cheap_when_cached(self, cost):
        assert cost.gather_time(1e6, 8, 1e4) < cost.stream_time(8e6)

    def test_gather_monotone_in_working_set(self, cost):
        ts = [cost.gather_time(1e6, 8, ws) for ws in (1e4, 1e6, 1e8)]
        assert ts == sorted(ts)


class TestCompute:
    def test_zero_flops_free(self, cost):
        assert cost.compute_time(0, 100) == 0.0

    def test_underutilization_penalty(self, cost):
        full = cost.compute_time(1e9, TITAN_RTX.cuda_cores)
        starved = cost.compute_time(1e9, TITAN_RTX.cuda_cores // 8)
        assert starved == pytest.approx(full * 8)

    def test_saturation_cap(self, cost):
        a = cost.compute_time(1e9, TITAN_RTX.cuda_cores)
        b = cost.compute_time(1e9, TITAN_RTX.cuda_cores * 100)
        assert a == pytest.approx(b)

    def test_serial_cycles(self, cost):
        assert cost.serial_cycles_time(TITAN_RTX.clock_hz) == pytest.approx(1.0)

    def test_warp_issue_scales_with_warps(self, cost):
        assert cost.warp_issue_time(2000) == pytest.approx(
            2 * cost.warp_issue_time(1000)
        )

    def test_warp_issue_more_sms_faster(self):
        t_big = CostModel(TITAN_RTX).warp_issue_time(1e5)
        t_small = CostModel(TITAN_RTX_SCALED).warp_issue_time(1e5)
        assert t_big < t_small


class TestScalarEntryBytes:
    def test_unit_rows_fully_coalesced(self, cost):
        assert cost.scalar_entry_bytes(1.0, 12) == 12.0

    def test_long_rows_pay_full_sector(self, cost):
        assert cost.scalar_entry_bytes(50.0, 12) == TITAN_RTX.sector_bytes

    def test_interpolation(self, cost):
        assert cost.scalar_entry_bytes(2.0, 12) == pytest.approx(24.0)

    def test_never_below_payload(self, cost):
        assert cost.scalar_entry_bytes(0.1, 12) == 12.0


class TestOverheads:
    def test_kernel_time_floor(self, cost):
        assert cost.kernel_time(0.0, 0.0) == TITAN_RTX.min_kernel_s

    def test_kernel_time_roofline(self, cost):
        assert cost.kernel_time(3e-3, 1e-3) == pytest.approx(3e-3)
        assert cost.kernel_time(1e-3, 3e-3) == pytest.approx(3e-3)

    def test_kernel_time_extra_added(self, cost):
        assert cost.kernel_time(1e-3, 0.0, extra_s=5e-4) == pytest.approx(1.5e-3)

    def test_atomics(self, cost):
        assert cost.atomic_time(TITAN_RTX.atomic_gops) == pytest.approx(1.0)
        assert cost.contention_time(10) == pytest.approx(
            10 * TITAN_RTX.atomic_contention_s
        )

"""Tests for the serving layer: fingerprints, plan cache, SolveService."""

import threading

import numpy as np
import pytest

from repro import (
    LevelSetSolver,
    ServiceOverloadedError,
    ServiceClosedError,
    register_solver,
    unregister_solver,
)
from repro.core.solver import TriangularSolver
from repro.errors import NotTriangularError
from repro.kernels import solve_serial
from repro.serve import (
    PlanCache,
    ServiceConfig,
    ServiceTimeoutError,
    SolveRequest,
    SolveService,
    matrix_fingerprint,
    mixed_workload,
    plan_key,
    replay,
)
from repro.gpu.device import TITAN_RTX_SCALED, TITAN_X_SCALED

from conftest import random_lower, random_square


class TestFingerprint:
    def test_deterministic(self):
        L = random_lower(60, 0.1, seed=1)
        assert matrix_fingerprint(L) == matrix_fingerprint(L.copy())

    def test_value_change_changes_fingerprint(self):
        L = random_lower(60, 0.1, seed=1)
        M = L.copy()
        M.data[0] += 1.0
        assert matrix_fingerprint(L) != matrix_fingerprint(M)

    def test_structure_change_changes_fingerprint(self):
        L = random_lower(60, 0.1, seed=1)
        M = random_lower(60, 0.1, seed=2)
        assert matrix_fingerprint(L) != matrix_fingerprint(M)

    def test_plan_key_separates_method_device_options(self):
        fp = matrix_fingerprint(random_lower(30, 0.2, seed=3))
        base = plan_key(fp, "recursive-block", TITAN_RTX_SCALED, {})
        assert base != plan_key(fp, "levelset", TITAN_RTX_SCALED, {})
        assert base != plan_key(fp, "recursive-block", TITAN_X_SCALED, {})
        assert base != plan_key(fp, "recursive-block", TITAN_RTX_SCALED, {"depth": 2})


class TestPlanCache:
    def test_lru_eviction_and_stats(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        st = cache.stats()
        assert st.evictions == 1 and st.size == 2
        assert st.hits == 3 and st.misses == 1

    def test_get_or_build_single_build(self):
        cache = PlanCache(capacity=4)
        calls = []
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or "v2")
        assert (value, hit) == ("v", True)
        assert len(calls) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestSolveService:
    def test_miss_then_hit_skips_preprocessing(self, rng):
        L = random_lower(150, 0.05, seed=5)
        with SolveService(cache_capacity=4, max_workers=2) as svc:
            r1 = svc.solve(L, rng.standard_normal(150))
            r2 = svc.solve(L, rng.standard_normal(150))
            recs = svc.records()
        assert not r1.cache_hit and r2.cache_hit
        assert recs[0].prep_time_s > 0 and recs[1].prep_time_s == 0.0
        assert recs[1].sim_latency_s < recs[0].sim_latency_s

    def test_solutions_exact(self, rng):
        L = random_lower(120, 0.06, seed=6)
        b = rng.standard_normal(120)
        with SolveService() as svc:
            res = svc.solve(L, b)
        assert np.allclose(res.x, solve_serial(L, b), rtol=1e-9)

    def test_upper_triangular_round_trip(self, rng):
        U = random_lower(90, 0.07, seed=7).transpose()
        b = rng.standard_normal(90)
        with SolveService() as svc:
            r1 = svc.solve(U, b)
            r2 = svc.solve(U, b)
        assert np.allclose(U.to_dense() @ r1.x, b, atol=1e-8)
        assert r2.cache_hit and np.allclose(r1.x, r2.x)

    def test_rejects_non_triangular(self):
        A = random_square(25, 0.5, seed=8)
        with SolveService() as svc:
            with pytest.raises(NotTriangularError):
                svc.solve(A, np.ones(25))
            assert svc.stats().failed == 1

    def test_batch_coalesces_same_matrix(self, rng):
        L = random_lower(130, 0.05, seed=9)
        M = random_lower(110, 0.05, seed=10)
        reqs = [
            SolveRequest(A=L, b=rng.standard_normal(130)),
            SolveRequest(A=M, b=rng.standard_normal(110)),
            SolveRequest(A=L, b=rng.standard_normal(130)),
            SolveRequest(A=L, b=rng.standard_normal((130, 3))),
        ]
        with SolveService(max_workers=4) as svc:
            out = svc.solve_batch(reqs)
            stats = svc.stats()
        for rq, res in zip(reqs, out):
            B = rq.b if rq.b.ndim == 2 else rq.b[:, None]
            X = np.asarray(res.x)
            X = X if X.ndim == 2 else X[:, None]
            assert np.allclose(rq.A.matmat(X), B, atol=1e-8)
        # The three L requests (5 columns total) ran as one fused solve.
        assert stats.coalesced_requests == 3
        assert stats.total_rhs == 6
        l_recs = [r for r in svc.records() if r.fingerprint == matrix_fingerprint(L)]
        assert all(r.coalesced == 3 for r in l_recs)

    def test_fallback_on_planner_failure(self):
        class Exploding(TriangularSolver):
            method = "exploding-test"

            def _prepare(self, L):
                raise RuntimeError("boom")

        register_solver("exploding-test", Exploding)
        try:
            L = random_lower(80, 0.08, seed=11)
            with SolveService(cache_capacity=4) as svc:
                r1 = svc.solve(L, np.ones(80), method="exploding-test")
                r2 = svc.solve(L, np.ones(80), method="exploding-test")
                stats = svc.stats()
            assert r1.fallback and r1.method == "levelset" and not r1.cache_hit
            assert r2.fallback and r2.cache_hit
            assert stats.fallbacks == 2
            assert np.allclose(L.matvec(r1.x), np.ones(80), atol=1e-9)
        finally:
            unregister_solver("exploding-test")

    def test_failure_propagates_when_fallback_disabled(self):
        class Exploding(TriangularSolver):
            method = "exploding-test2"

            def _prepare(self, L):
                raise RuntimeError("boom")

        register_solver("exploding-test2", Exploding)
        try:
            L = random_lower(40, 0.1, seed=12)
            with SolveService(fallback=False) as svc:
                with pytest.raises(RuntimeError):
                    svc.solve(L, np.ones(40), method="exploding-test2")
                assert svc.stats().failed == 1
        finally:
            unregister_solver("exploding-test2")

    def test_cache_eviction_under_pressure(self, rng):
        mats = [random_lower(70 + 10 * i, 0.08, seed=20 + i) for i in range(4)]
        with SolveService(cache_capacity=2) as svc:
            for A in mats:
                svc.solve(A, rng.standard_normal(A.n_rows))
            stats_tour = svc.stats()
            # Every request was a distinct matrix: all misses, 2 evictions.
            assert stats_tour.cache_misses == 4 and stats_tour.cache_hits == 0
            assert stats_tour.evictions == 2
            # The two most recent plans are resident; older ones rebuild.
            assert svc.solve(mats[3], rng.standard_normal(mats[3].n_rows)).cache_hit
            assert not svc.solve(mats[0], rng.standard_normal(mats[0].n_rows)).cache_hit

    def test_expired_deadline_times_out(self):
        L = random_lower(60, 0.1, seed=13)
        with SolveService() as svc:
            fut = svc.submit(L, np.ones(60), timeout_s=-1.0)
            with pytest.raises(ServiceTimeoutError):
                fut.result()
            stats = svc.stats()
        assert stats.timeouts == 1 and stats.failed == 0

    def test_overload_raises(self):
        release = threading.Event()

        class Slow(TriangularSolver):
            method = "slow-test"

            def _prepare(self, L):
                release.wait(timeout=30)
                return LevelSetSolver(device=self.device).prepare(L)

        register_solver("slow-test", Slow)
        try:
            L = random_lower(50, 0.1, seed=14)
            svc = SolveService(max_workers=1, queue_limit=1)
            fut = svc.submit(L, np.ones(50), method="slow-test")
            with pytest.raises(ServiceOverloadedError):
                svc.submit(L, np.ones(50))
            release.set()
            assert np.allclose(L.matvec(fut.result()[0].x), np.ones(50), atol=1e-9)
            svc.close()
        finally:
            release.set()
            unregister_solver("slow-test")

    def test_closed_service_rejects(self):
        svc = SolveService()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(random_lower(20, 0.2, seed=15), np.ones(20))

    def test_registered_solver_usable_by_name(self):
        class Custom(LevelSetSolver):
            method = "custom-levelset"

        register_solver("custom-levelset", Custom)
        try:
            L = random_lower(60, 0.1, seed=16)
            with SolveService() as svc:
                res = svc.solve(L, np.ones(60), method="custom-levelset")
            assert res.method == "custom-levelset" and not res.fallback
        finally:
            unregister_solver("custom-levelset")

    def test_concurrent_same_matrix_builds_once(self, rng):
        L = random_lower(200, 0.04, seed=17)
        with SolveService(max_workers=4) as svc:
            futures = [svc.submit(L, rng.standard_normal(200)) for _ in range(8)]
            results = [f.result()[0] for f in futures]
            assert svc.cache.stats().size == 1
        # Single-flight: exactly one request paid preprocessing.
        assert sum(1 for r in results if not r.cache_hit) == 1

    def test_stats_render_and_dict(self, rng):
        L = random_lower(80, 0.08, seed=18)
        with SolveService() as svc:
            svc.solve(L, rng.standard_normal(80))
            svc.solve(L, rng.standard_normal(80))
            stats = svc.stats()
        d = stats.as_dict()
        assert d["requests"] == 2 and d["cache_hits"] == 1
        assert d["cache"]["capacity"] == svc.cache.capacity
        text = stats.render()
        assert "hits" in text and "speedup" in text

    def test_invalid_config_method(self):
        with pytest.raises(ValueError):
            SolveService(method="no-such-method")

    def test_invalid_config_options(self):
        with pytest.raises(ValueError):
            SolveService(solver_options={"dpeth": 3})


class TestWorkload:
    def test_mixed_workload_deterministic(self):
        w1 = mixed_workload(12, scale=0.02, n_matrices=3, seed=4)
        w2 = mixed_workload(12, scale=0.02, n_matrices=3, seed=4)
        assert [n for n, _ in w1.stream] == [n for n, _ in w2.stream]
        assert w1.n_requests == 12 and len(w1.matrices) == 3

    def test_replay_batched_and_single(self):
        workload = mixed_workload(8, scale=0.02, n_matrices=2, seed=5)
        cfg = ServiceConfig(cache_capacity=4, max_workers=2)
        with SolveService(cfg) as svc:
            results = replay(svc, workload, batch_size=4)
            assert len(results) == 8
            assert svc.stats().requests == 8
        with SolveService(cfg) as svc:
            results = replay(svc, workload)
            assert len(results) == 8
            stats = svc.stats()
            assert stats.cache_misses == 2  # one per distinct matrix
            assert stats.cache_hits == 6

"""Solver facade tests: API behaviour, multi-RHS, amortization, traffic."""

import numpy as np
import pytest

from repro.core.solver import (
    SOLVERS,
    ColumnBlockSolver,
    CuSparseSolver,
    LevelSetSolver,
    RecursiveBlockSolver,
    RowBlockSolver,
    SerialSolver,
    SyncFreeSolver,
)
from repro.errors import NotTriangularError
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import solve_serial

from conftest import random_lower, random_square

DEV = TITAN_RTX_SCALED
ALL = [
    SerialSolver,
    LevelSetSolver,
    CuSparseSolver,
    SyncFreeSolver,
    ColumnBlockSolver,
    RowBlockSolver,
    RecursiveBlockSolver,
]


@pytest.fixture
def system(rng):
    L = random_lower(350, 0.03, seed=77)
    b = rng.standard_normal(350)
    return L, b, solve_serial(L, b)


class TestFacadeAPI:
    @pytest.mark.parametrize("cls", ALL)
    def test_prepare_solve(self, cls, system):
        L, b, x_ref = system
        prepared = cls(device=DEV).prepare(L)
        x, report = prepared.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)
        assert report.method == cls.method
        assert prepared.preprocessing_time_s >= 0

    @pytest.mark.parametrize("cls", ALL)
    def test_one_shot_solve(self, cls, system):
        L, b, x_ref = system
        x, _ = cls(device=DEV).solve(L, b)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)

    def test_rejects_non_square(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(NotTriangularError):
            RecursiveBlockSolver(device=DEV).prepare(A)

    def test_rejects_non_triangular(self):
        A = random_square(20, 0.5, seed=1)
        with pytest.raises(NotTriangularError):
            SyncFreeSolver(device=DEV).prepare(A)

    def test_registry_complete(self):
        assert set(SOLVERS) == {
            "serial",
            "levelset",
            "cusparse",
            "syncfree",
            "column-block",
            "row-block",
            "recursive-block",
        }

    def test_registry_instances_solve(self, system):
        L, b, x_ref = system
        for name, cls in SOLVERS.items():
            x, _ = cls(device=DEV).solve(L, b)
            assert np.allclose(x, x_ref, rtol=1e-8, atol=1e-10), name


class TestMultiRHS:
    def test_solve_multi_matches_column_solves(self, system, rng):
        L, _, _ = system
        B = rng.standard_normal((350, 4))
        prepared = RecursiveBlockSolver(device=DEV).prepare(L)
        X, report = prepared.solve_multi(B)
        for j in range(4):
            assert np.allclose(L.matvec(X[:, j]), B[:, j], atol=1e-8)
        assert report.detail["n_rhs"] == 4

    def test_unfused_multi_time_scales_linearly(self, system, rng):
        L, b, _ = system
        prepared = SyncFreeSolver(device=DEV).prepare(L)
        _, single = prepared.solve(b)
        B = rng.standard_normal((350, 5))
        _, multi = prepared.solve_multi(B, fused=False)
        assert multi.time_s == pytest.approx(5 * single.time_s)

    def test_fused_multi_amortizes(self, system, rng):
        """The fused kernels stream the matrix once: k solves cost less
        than k independent solves (the [50] effect)."""
        L, b, _ = system
        B = rng.standard_normal((350, 16))
        for cls in (SyncFreeSolver, CuSparseSolver, RecursiveBlockSolver):
            prepared = cls(device=DEV).prepare(L)
            Xf, fused = prepared.solve_multi(B, fused=True)
            Xu, unfused = prepared.solve_multi(B, fused=False)
            assert np.allclose(Xf, Xu, rtol=1e-9, atol=1e-10), cls.method
            assert fused.time_s < unfused.time_s, cls.method

    def test_fused_multi_correct_per_column(self, system, rng):
        L, _, _ = system
        B = rng.standard_normal((350, 3))
        prepared = RecursiveBlockSolver(device=DEV).prepare(L)
        X, rep = prepared.solve_multi(B)
        for j in range(3):
            assert np.allclose(L.matvec(X[:, j]), B[:, j], atol=1e-8)
        assert rep.detail["fused"] is True

    def test_solve_multi_1d_passthrough(self, system):
        L, b, x_ref = system
        prepared = CuSparseSolver(device=DEV).prepare(L)
        x, _ = prepared.solve_multi(b)
        assert np.allclose(x, x_ref, rtol=1e-9)


class TestAmortization:
    def test_amortized_time_formula(self, system):
        L, b, _ = system
        prepared = RecursiveBlockSolver(device=DEV).prepare(L)
        _, rep = prepared.solve(b)
        total = prepared.amortized_time(100, rep)
        assert total == pytest.approx(
            prepared.preprocessing_time_s + 100 * rep.time_s
        )

    def test_block_beats_baselines_amortized(self):
        """Table 5's message: despite heavier preprocessing, the block
        algorithm wins a preprocessing + 500-solve workload (on a matrix
        in the suite's operating regime, i.e. large enough to split)."""
        from repro.matrices.generators import layered_random

        sizes = np.full(8, 2500, dtype=np.int64)
        L = layered_random(
            sizes, nnz_per_row=8.0, rng=np.random.default_rng(2), locality=0.05
        )
        b = np.ones(L.n_rows)
        totals = {}
        for cls in (CuSparseSolver, SyncFreeSolver, RecursiveBlockSolver):
            prepared = cls(device=DEV).prepare(L)
            _, rep = prepared.solve(b)
            totals[cls.method] = prepared.amortized_time(500, rep)
        assert totals["recursive-block"] < totals["cusparse"]
        assert totals["recursive-block"] < totals["syncfree"]


class TestBlockSolverOptions:
    def test_explicit_depth(self, system):
        L, b, x_ref = system
        prepared = RecursiveBlockSolver(device=DEV, depth=3).prepare(L)
        assert prepared.plan.n_tri_segments == 8
        x, _ = prepared.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-9)

    def test_explicit_nseg(self, system):
        L, b, x_ref = system
        prepared = ColumnBlockSolver(device=DEV, nseg=5).prepare(L)
        assert prepared.plan.n_tri_segments == 5
        x, _ = prepared.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-9)

    @pytest.mark.parametrize("kw", [
        {"reorder": False},
        {"use_dcsr": False},
        {"reorder": False, "use_dcsr": False},
        {"fixed_tri": "levelset"},
        {"fixed_spmv": "scalar-csr"},
    ])
    def test_ablation_variants_solve_correctly(self, kw, system):
        L, b, x_ref = system
        prepared = RecursiveBlockSolver(device=DEV, depth=2, **kw).prepare(L)
        x, _ = prepared.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)

    def test_blocked_attached_when_improved(self, system):
        L, _, _ = system
        prepared = RecursiveBlockSolver(device=DEV, depth=2).prepare(L)
        assert prepared.blocked is not None
        assert prepared.blocked.depth == 2

    def test_traffic_counters_exposed(self, system):
        L, _, _ = system
        prepared = RecursiveBlockSolver(device=DEV, depth=2, reorder=False).prepare(L)
        assert prepared.plan.b_items_updated >= L.n_rows
        assert prepared.plan.x_items_loaded >= 0


class TestFloat32:
    @pytest.mark.parametrize("cls", [CuSparseSolver, SyncFreeSolver,
                                     RecursiveBlockSolver])
    def test_single_precision(self, cls, rng):
        L = random_lower(200, 0.04, seed=5).astype(np.float32)
        b = rng.standard_normal(200).astype(np.float32)
        x, _ = cls(device=DEV).solve(L, b)
        assert np.allclose(L.matvec(x), b, atol=1e-3)

    def test_single_precision_faster(self, rng):
        """Less value traffic -> simulated single precision never slower."""
        L64 = random_lower(3000, 0.005, seed=6)
        L32 = L64.astype(np.float32)
        b = np.ones(3000)
        _, r64 = SyncFreeSolver(device=DEV).solve(L64, b)
        _, r32 = SyncFreeSolver(device=DEV).solve(L32, b.astype(np.float32))
        assert r32.time_s <= r64.time_s

"""Shared fixtures and matrix factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CSRMatrix, lower_triangular_from
from repro.gpu.device import TITAN_RTX, TITAN_RTX_SCALED, TITAN_X, TITAN_X_SCALED


def random_square(n: int, density: float, seed: int = 0, dtype=np.float64) -> CSRMatrix:
    """A random square matrix with ~density fill."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    return CSRMatrix.from_dense(dense.astype(dtype))


def random_lower(n: int, density: float = 0.1, seed: int = 0, dtype=np.float64) -> CSRMatrix:
    """A well-conditioned random lower-triangular matrix with full diagonal."""
    L = lower_triangular_from(random_square(n, density, seed, dtype))
    # Push diagonal away from zero for clean relative-error checks.
    rng = np.random.default_rng(seed + 1)
    diag_rows = np.repeat(np.arange(n), L.row_counts())
    on_diag = L.indices == diag_rows
    L.data[on_diag] = np.sign(L.data[on_diag]) * (np.abs(L.data[on_diag]) + 1.0)
    # Keep off-diagonals modest so the system is well conditioned.
    L.data[~on_diag] *= 0.3
    return L


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=["titan_x", "titan_rtx"])
def device(request):
    return {"titan_x": TITAN_X, "titan_rtx": TITAN_RTX}[request.param]


@pytest.fixture
def scaled_device():
    return TITAN_RTX_SCALED


@pytest.fixture
def scaled_devices():
    return [TITAN_X_SCALED, TITAN_RTX_SCALED]


@pytest.fixture
def small_lower():
    return random_lower(60, density=0.15, seed=3)


@pytest.fixture
def medium_lower():
    return random_lower(400, density=0.02, seed=9)

"""Unit tests for the CSR container."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.formats import CSRMatrix

from conftest import random_square


class TestConstruction:
    def test_from_dense_roundtrip(self):
        d = np.array([[1.0, 0.0], [2.0, 3.0]])
        A = CSRMatrix.from_dense(d)
        assert A.nnz == 3
        assert np.array_equal(A.to_dense(), d)

    def test_from_coo_sums_duplicates(self):
        A = CSRMatrix.from_coo(
            np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 1.0]), (2, 2)
        )
        assert A.nnz == 2
        assert A.to_dense()[0, 1] == 5.0

    def test_from_coo_keep_duplicates(self):
        A = CSRMatrix.from_coo(
            np.array([0, 0]), np.array([1, 1]), np.array([2.0, 3.0]), (2, 2),
            sum_duplicates=False,
        )
        assert A.nnz == 2
        assert A.to_dense()[0, 1] == 5.0  # dense assembly still sums

    def test_empty(self):
        A = CSRMatrix.empty(3, 4)
        assert A.nnz == 0 and A.shape == (3, 4)
        assert np.array_equal(A.to_dense(), np.zeros((3, 4)))

    def test_identity(self):
        I = CSRMatrix.identity(4)
        assert np.array_equal(I.to_dense(), np.eye(4))

    def test_from_dense_with_tol(self):
        d = np.array([[1e-12, 1.0], [0.5, 0.0]])
        A = CSRMatrix.from_dense(d, tol=1e-9)
        assert A.nnz == 2

    def test_integer_data_promoted_to_float(self):
        A = CSRMatrix.from_coo(
            np.array([0]), np.array([0]), np.array([1]), (1, 1)
        )
        assert A.data.dtype.kind == "f"


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0], dtype=np.int32),
                      np.array([1.0]))

    def test_decreasing_indptr(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(2, 2, np.array([0, 2, 1]),
                      np.array([0, 1], dtype=np.int32), np.array([1.0, 2.0]))

    def test_column_out_of_bounds(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([5], dtype=np.int32),
                      np.array([1.0]))

    def test_indptr_nnz_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(1, 2, np.array([0, 2]), np.array([0], dtype=np.int32),
                      np.array([1.0]))

    def test_data_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(1, 2, np.array([0, 1]), np.array([0], dtype=np.int32),
                      np.array([1.0, 2.0]))


class TestNumerics:
    def test_matvec_matches_dense(self):
        A = random_square(40, 0.2, seed=5)
        x = np.random.default_rng(0).standard_normal(40)
        assert np.allclose(A.matvec(x), A.to_dense() @ x)

    def test_matvec_rectangular(self):
        rng = np.random.default_rng(2)
        d = (rng.random((5, 9)) < 0.4) * rng.standard_normal((5, 9))
        A = CSRMatrix.from_dense(d)
        x = rng.standard_normal(9)
        assert np.allclose(A.matvec(x), d @ x)

    def test_matvec_wrong_length(self):
        A = random_square(10, 0.3)
        with pytest.raises(ShapeMismatchError):
            A.matvec(np.ones(11))

    def test_matvec_out_param(self):
        A = random_square(10, 0.3)
        out = np.empty(10)
        y = A.matvec(np.ones(10), out=out)
        assert y is out

    def test_diagonal(self):
        d = np.diag([1.0, 2.0, 3.0]) + np.tril(np.ones((3, 3)), -1)
        A = CSRMatrix.from_dense(d)
        assert A.diagonal().tolist() == [1.0, 2.0, 3.0]

    def test_diagonal_with_missing_entries(self):
        d = np.array([[0.0, 0.0], [1.0, 5.0]])
        assert CSRMatrix.from_dense(d).diagonal().tolist() == [0.0, 5.0]

    def test_scale_rows(self):
        A = random_square(8, 0.4, seed=7)
        s = np.arange(1.0, 9.0)
        assert np.allclose(A.scale_rows(s).to_dense(), np.diag(s) @ A.to_dense())


class TestStructure:
    def test_extract_block(self):
        A = random_square(30, 0.2, seed=11)
        B = A.extract_block(5, 20, 3, 27)
        assert np.allclose(B.to_dense(), A.to_dense()[5:20, 3:27])

    def test_extract_block_empty_region(self):
        A = CSRMatrix.empty(10, 10)
        B = A.extract_block(2, 8, 2, 8)
        assert B.nnz == 0 and B.shape == (6, 6)

    def test_extract_block_bounds_check(self):
        A = random_square(10, 0.3)
        with pytest.raises(ShapeMismatchError):
            A.extract_block(0, 11, 0, 5)

    def test_extract_block_zero_width(self):
        A = random_square(10, 0.3)
        B = A.extract_block(3, 3, 0, 10)
        assert B.shape == (0, 10) and B.nnz == 0

    def test_permute_symmetric(self):
        A = random_square(12, 0.3, seed=13)
        p = np.random.default_rng(1).permutation(12)
        assert np.allclose(
            A.permute_symmetric(p).to_dense(), A.to_dense()[np.ix_(p, p)]
        )

    def test_permute_requires_square(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeMismatchError):
            A.permute_symmetric(np.array([0, 1]))

    def test_sort_indices(self):
        A = CSRMatrix(
            2,
            3,
            np.array([0, 2, 3]),
            np.array([2, 0, 1], dtype=np.int32),
            np.array([1.0, 2.0, 3.0]),
        )
        assert not A.has_sorted_indices()
        S = A.sort_indices()
        assert S.has_sorted_indices()
        assert np.array_equal(S.to_dense(), A.to_dense())

    def test_sorted_detection_noop(self):
        A = random_square(15, 0.3, seed=1)
        assert A.has_sorted_indices()
        assert A.sort_indices() is A

    def test_transpose(self):
        A = random_square(14, 0.25, seed=17)
        assert np.allclose(A.transpose().to_dense(), A.to_dense().T)

    def test_row_slice_views(self):
        A = random_square(10, 0.5, seed=19)
        cols, vals = A.row_slice(4)
        dense_row = A.to_dense()[4]
        assert np.allclose(dense_row[cols], vals)

    def test_astype(self):
        A = random_square(8, 0.4)
        B = A.astype(np.float32)
        assert B.data.dtype == np.float32
        assert np.allclose(B.to_dense(), A.to_dense(), atol=1e-6)

    def test_copy_is_independent(self):
        A = random_square(8, 0.4)
        B = A.copy()
        B.data[:] = 0
        assert A.data.any()

    def test_allclose(self):
        A = random_square(8, 0.4, seed=23)
        assert A.allclose(A.copy())
        B = A.copy()
        B.data[0] += 1.0
        assert not A.allclose(B)

    def test_row_counts(self):
        A = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert A.row_counts().tolist() == [2, 0]

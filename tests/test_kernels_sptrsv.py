"""Correctness and timing-behaviour tests of the four SpTRSV kernels."""

import numpy as np
import pytest

from repro.errors import NotTriangularError
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import (
    CuSparseLikeKernel,
    DiagonalKernel,
    LevelSetKernel,
    SerialKernel,
    SyncFreeKernel,
    prepare_lower,
    reference_dense_solve,
    solve_serial,
)
from repro.matrices.generators import chain_matrix, layered_random

from conftest import random_lower

PARALLEL_KERNELS = [LevelSetKernel, SyncFreeKernel, CuSparseLikeKernel]
ALL_KERNELS = PARALLEL_KERNELS + [SerialKernel]


@pytest.fixture
def system(medium_lower, rng):
    b = rng.standard_normal(medium_lower.n_rows)
    return medium_lower, b, solve_serial(medium_lower, b)


class TestSerialReference:
    def test_matches_dense_forward_substitution(self, small_lower, rng):
        b = rng.standard_normal(small_lower.n_rows)
        x = solve_serial(small_lower, b)
        assert np.allclose(x, reference_dense_solve(small_lower, b), atol=1e-10)

    def test_residual_is_small(self, small_lower, rng):
        b = rng.standard_normal(small_lower.n_rows)
        x = solve_serial(small_lower, b)
        assert np.allclose(small_lower.matvec(x), b, atol=1e-9)

    def test_identity(self):
        I = CSRMatrix.identity(5)
        assert np.allclose(solve_serial(I, np.arange(5.0)), np.arange(5.0))


class TestKernelCorrectness:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_matches_serial(self, kernel_cls, system, scaled_device):
        L, b, x_ref = system
        x, report = kernel_cls().solve_system(L, b, scaled_device)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)
        assert report.time_s > 0
        assert report.flops == 2.0 * L.nnz

    @pytest.mark.parametrize("kernel_cls", PARALLEL_KERNELS)
    def test_chain_matrix(self, kernel_cls, scaled_device, rng):
        L = chain_matrix(200, rng=np.random.default_rng(3))
        b = rng.standard_normal(200)
        x, _ = kernel_cls().solve_system(L, b, scaled_device)
        assert np.allclose(L.matvec(x), b, atol=1e-8)

    @pytest.mark.parametrize("kernel_cls", PARALLEL_KERNELS)
    def test_float32(self, kernel_cls, scaled_device, rng):
        L = random_lower(120, 0.05, seed=31).astype(np.float32)
        b = rng.standard_normal(120).astype(np.float32)
        x, _ = kernel_cls().solve_system(L, b, scaled_device)
        assert np.allclose(L.matvec(x), b, atol=1e-3)

    @pytest.mark.parametrize("kernel_cls", PARALLEL_KERNELS)
    def test_dense_lower(self, kernel_cls, scaled_device, rng):
        d = np.tril(rng.standard_normal((40, 40)) * 0.1) + np.eye(40) * 2
        L = CSRMatrix.from_dense(d)
        b = rng.standard_normal(40)
        x, _ = kernel_cls().solve_system(L, b, scaled_device)
        assert np.allclose(x, np.linalg.solve(d, b), atol=1e-9)


class TestDiagonalKernel:
    def test_solves(self, scaled_device):
        L = CSRMatrix.from_dense(np.diag(np.arange(1.0, 9.0)))
        x, report = DiagonalKernel().solve_system(L, np.ones(8), scaled_device)
        assert np.allclose(x, 1.0 / np.arange(1.0, 9.0))
        assert report.launches == 1

    def test_rejects_offdiagonal(self, small_lower, scaled_device):
        k = DiagonalKernel()
        with pytest.raises(NotTriangularError):
            k.preprocess(prepare_lower(small_lower), scaled_device)


class TestTimingBehaviour:
    def test_levelset_launches_per_level(self, scaled_device):
        L = chain_matrix(64, extra_nnz_per_row=0.0, rng=np.random.default_rng(0))
        k = LevelSetKernel()
        _, report = k.solve_system(L, np.ones(64), scaled_device)
        assert report.launches == 64

    def test_syncfree_single_launch(self, medium_lower, scaled_device):
        _, report = SyncFreeKernel().solve_system(
            medium_lower, np.ones(medium_lower.n_rows), scaled_device
        )
        assert report.launches == 1

    def test_syncfree_preprocess_cheaper_than_cusparse(
        self, medium_lower, scaled_device
    ):
        """Table 5: Sync-free preprocessing is far cheaper than cuSPARSE
        analysis (2.34ms vs 91.32ms)."""
        prep = prepare_lower(medium_lower)
        _, sf = SyncFreeKernel().preprocess(prep, scaled_device)
        _, cu = CuSparseLikeKernel().preprocess(prep, scaled_device)
        assert sf.time_s < cu.time_s / 5

    def test_deeper_matrix_slower_levelset(self, scaled_device):
        rng = np.random.default_rng(0)
        shallow = layered_random(np.array([200, 200]), 4.0, rng)
        deep = chain_matrix(400, rng=np.random.default_rng(1))
        _, r_sh = LevelSetKernel().solve_system(
            shallow, np.ones(400), scaled_device
        )
        _, r_dp = LevelSetKernel().solve_system(deep, np.ones(400), scaled_device)
        assert r_dp.time_s > r_sh.time_s

    def test_cusparse_beats_levelset_on_deep(self, scaled_device):
        """The nlevels > threshold region of Figure 5(a)."""
        deep = chain_matrix(800, rng=np.random.default_rng(5))
        b = np.ones(800)
        _, ls = LevelSetKernel().solve_system(deep, b, scaled_device)
        _, cu = CuSparseLikeKernel().solve_system(deep, b, scaled_device)
        assert cu.time_s < ls.time_s

    def test_syncfree_collapses_on_deep_wide_rows(self, scaled_device):
        """Sync-free pays dependency-chain atomics; cuSPARSE steps levels
        cheaply (the vas_stokes pattern of Table 4)."""
        rng = np.random.default_rng(7)
        deep_wide = layered_random(
            np.full(300, 8, dtype=np.int64), nnz_per_row=20.0, rng=rng
        )
        b = np.ones(deep_wide.n_rows)
        _, sf = SyncFreeKernel().solve_system(deep_wide, b, scaled_device)
        _, cu = CuSparseLikeKernel().solve_system(deep_wide, b, scaled_device)
        assert sf.time_s > cu.time_s

    def test_cost_cached_across_solves(self, medium_lower, scaled_device):
        k = LevelSetKernel()
        prep = prepare_lower(medium_lower)
        aux, _ = k.preprocess(prep, scaled_device)
        _, r1 = k.solve(aux, np.ones(medium_lower.n_rows), scaled_device)
        _, r2 = k.solve(aux, np.zeros(medium_lower.n_rows), scaled_device)
        assert r1.time_s == r2.time_s

    def test_rtx_not_slower_than_x_scaled(self, medium_lower, scaled_devices):
        x_dev, rtx_dev = scaled_devices
        b = np.ones(medium_lower.n_rows)
        for K in PARALLEL_KERNELS:
            _, rx = K().solve_system(medium_lower, b, x_dev)
            _, rr = K().solve_system(medium_lower, b, rtx_dev)
            assert rr.time_s <= rx.time_s * 1.05, K.__name__


class TestPreparedLower:
    def test_astype(self, small_lower):
        prep = prepare_lower(small_lower).astype(np.float32)
        assert prep.L.dtype == np.float32
        assert prep.diag.dtype == np.float32
        assert prep.value_bytes == 4

    def test_fields(self, small_lower):
        prep = prepare_lower(small_lower)
        assert prep.n == small_lower.n_rows
        assert prep.nnz == small_lower.nnz
        assert prep.value_bytes == 8

"""ILU(0), triangular preconditioner, and Krylov-iteration tests."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SingularMatrixError
from repro.formats import CSRMatrix
from repro.gpu.device import TITAN_RTX_SCALED
from repro.matrices.generators import grid_laplacian_2d
from repro.precond import (
    TriangularPreconditioner,
    ilu0,
    preconditioned_cg,
    preconditioned_richardson,
)


def spd_system(nx=14, ny=11, seed=0):
    """An SPD system from a grid Laplacian's symmetrized pattern."""
    L = grid_laplacian_2d(nx, ny, rng=np.random.default_rng(seed))
    d = L.to_dense()
    A_dense = d + d.T - np.diag(np.diag(d))
    A_dense = A_dense @ A_dense.T + np.eye(L.n_rows)  # guarantee SPD
    # Sparsify back to a banded SPD pattern.
    A_dense[np.abs(A_dense) < 1e-12] = 0.0
    A = CSRMatrix.from_dense(A_dense)
    b = np.random.default_rng(seed + 1).standard_normal(L.n_rows)
    return A, b


class TestILU0:
    def test_pattern_preserved(self):
        A, _ = spd_system()
        L, U = ilu0(A)
        # L strictly-lower pattern plus unit diagonal, U upper pattern —
        # both subsets of A's pattern.
        a_pat = A.to_dense() != 0
        lu_pat = (L.to_dense() != 0) | (U.to_dense() != 0)
        assert np.all(lu_pat <= (a_pat | np.eye(A.n_rows, dtype=bool)))

    def test_exact_on_full_pattern(self):
        """When A's pattern admits the full LU (dense), ILU(0) == LU."""
        rng = np.random.default_rng(2)
        d = rng.standard_normal((12, 12)) * 0.1 + np.eye(12) * 3
        A = CSRMatrix.from_dense(d)
        L, U = ilu0(A)
        assert np.allclose(L.to_dense() @ U.to_dense(), d, atol=1e-10)

    def test_unit_lower_diagonal(self):
        A, _ = spd_system(seed=3)
        L, _ = ilu0(A)
        assert np.allclose(L.diagonal(), 1.0)

    def test_matches_a_on_pattern(self):
        A, _ = spd_system(seed=4)
        L, U = ilu0(A)
        prod = L.to_dense() @ U.to_dense()
        mask = A.to_dense() != 0
        assert np.allclose(prod[mask], A.to_dense()[mask], atol=1e-8)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeMismatchError):
            ilu0(CSRMatrix.from_dense(np.ones((2, 3))))

    def test_rejects_missing_diagonal(self):
        d = np.array([[0.0, 1.0], [1.0, 2.0]])
        A = CSRMatrix.from_dense(d)  # (0,0) dropped -> no diagonal in row 0
        with pytest.raises(SingularMatrixError):
            ilu0(A)

    def test_diag_shift(self):
        A, _ = spd_system(seed=5)
        L1, U1 = ilu0(A)
        L2, U2 = ilu0(A, diag_shift=1.0)
        assert U2.diagonal().min() > U1.diagonal().min() - 1e-9


class TestTriangularPreconditioner:
    def test_apply_is_two_solves(self):
        A, b = spd_system(seed=6)
        L, U = ilu0(A)
        M = TriangularPreconditioner.build(L, U, device=TITAN_RTX_SCALED)
        z, t = M.apply(b)
        # z must equal U^{-1} L^{-1} b
        expect = np.linalg.solve(U.to_dense(), np.linalg.solve(L.to_dense(), b))
        assert np.allclose(z, expect, atol=1e-8)
        assert t > 0
        assert M.preprocessing_time_s > 0

    def test_callable_interface(self):
        A, b = spd_system(seed=7)
        L, U = ilu0(A)
        M = TriangularPreconditioner.build(L, U, device=TITAN_RTX_SCALED)
        assert np.allclose(M(b), M.apply(b)[0])


class TestKrylov:
    def test_cg_unpreconditioned(self):
        A, b = spd_system(seed=8)
        res = preconditioned_cg(A, b, None, tol=1e-10, max_iter=2000)
        assert res.converged
        assert np.linalg.norm(A.matvec(res.x) - b) < 1e-8 * np.linalg.norm(b)

    def test_cg_with_ilu_converges_faster(self):
        A, b = spd_system(nx=16, ny=13, seed=9)
        plain = preconditioned_cg(A, b, None, tol=1e-10, max_iter=3000)
        L, U = ilu0(A)
        M = TriangularPreconditioner.build(L, U, device=TITAN_RTX_SCALED)
        pre = preconditioned_cg(A, b, M, tol=1e-10, max_iter=3000)
        assert pre.converged
        assert pre.iterations < plain.iterations
        assert pre.precond_time_s > 0

    def test_richardson_with_ilu(self):
        A, b = spd_system(seed=10)
        L, U = ilu0(A)
        M = TriangularPreconditioner.build(L, U, device=TITAN_RTX_SCALED)
        res = preconditioned_richardson(A, b, M, tol=1e-9, max_iter=300)
        assert res.converged
        assert np.linalg.norm(A.matvec(res.x) - b) < 1e-7 * np.linalg.norm(b)

    def test_cg_reports_residual_history(self):
        A, b = spd_system(seed=11)
        res = preconditioned_cg(A, b, None, tol=1e-8)
        assert len(res.residual_norms) == res.iterations + 1
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_cg_x0(self):
        A, b = spd_system(seed=12)
        x_exact = np.linalg.solve(A.to_dense(), b)
        res = preconditioned_cg(A, b, None, x0=x_exact, tol=1e-8, max_iter=5)
        assert res.converged and res.iterations <= 1

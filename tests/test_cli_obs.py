"""CLI observability verbs (`stats --watch`, `trace --prom`, `slo`,
`incidents`) and the deterministic SLO acceptance scenario: a seeded
workload with an injected latency fault trips the burn-rate alert at an
exact request index, the flight recorder dumps a JSONL incident naming
the offending trace, and the breached latency bucket's exemplar
resolves back to that same trace."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    AlertSink,
    FlightRecorder,
    Observability,
    SLOEngine,
    SLOPolicy,
)
from repro.serve import ServiceConfig, SolveService
from repro.serve.workload import revalued_workload
from repro.validate import FaultInjector


class TestStatsWatch:
    def test_watch_mode_replays_and_prints_final_snapshot(self, capsys):
        rc = main(["stats", "--requests", "8", "--matrices", "2",
                   "--watch", "--interval", "0.01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "--- final (8 requests replayed) ---" in out
        assert "service stats" in out
        # Any intermediate snapshots printed by the watch loop follow
        # the same progress-header format.
        for line in out.splitlines():
            if line.startswith("--- ") and "final" not in line:
                assert line.endswith("requests completed ---")


class TestTraceExitCodes:
    def test_trace_prom_export_succeeds(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        rc = main(["trace", "--size", "96", "--prom", str(prom)])
        capsys.readouterr()
        assert rc == 0
        assert "# TYPE repro_b_writes_total counter" in prom.read_text()

    def test_trace_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["trace", "--method", "no-such-method"])


class TestSLOAcceptance:
    """The ISSUE acceptance scenario, library-level."""

    def _run(self, tmp_path):
        policy = SLOPolicy("p", objective_s=0.05, target=0.5,
                           window=8, fast_window=2)
        sink = AlertSink(jsonl_path=tmp_path / "alerts.jsonl")
        engine = SLOEngine([policy], sink=sink)
        recorder = FlightRecorder(capacity=64, incident_dir=tmp_path)
        obs = Observability(slo=engine, recorder=recorder)
        # The first two solves sleep 80ms >> the 50ms objective; with
        # one worker and sequential submission the breaches are exactly
        # requests 1 and 2, every run, on any host.
        inj = FaultInjector(solve_delay_s=0.08, max_faults=2)
        workload = revalued_workload(10, seed=0, tenants=("acme", "beta"))
        config = ServiceConfig(obs=obs, max_workers=1)
        with SolveService(config, fault_injector=inj) as svc:
            for r in workload.requests():
                svc.solve(r.A, r.b, tenant=r.tenant)
            records = svc.records()
        return obs, engine, sink, recorder, records

    def test_alert_fires_at_known_request_index(self, tmp_path):
        obs, engine, sink, recorder, records = self._run(tmp_path)
        assert engine.seq == 10
        assert len(sink.alerts) == 1
        alert = sink.alerts[0]
        # Fast window fills at the second request, both windows are
        # fully burning -> the alert fires there, not later.
        assert alert.seq == 2 and alert.n_observed == 2
        assert alert.fast_burn == pytest.approx(2.0)
        assert alert.slow_burn == pytest.approx(2.0)
        # The offending trace is the second (breaching) request's.
        assert alert.trace_id == records[1].trace_id
        assert records[1].tenant == "beta"
        assert records[1].wall_time_s > 0.05
        # Delivered to the JSONL sink too.
        lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
        assert [json.loads(ln)["seq"] for ln in lines] == [2]

    def test_incident_jsonl_contains_offending_trace(self, tmp_path):
        obs, engine, sink, recorder, records = self._run(tmp_path)
        assert [i.reason for i in recorder.incidents] == ["slo:p"]
        loaded = FlightRecorder.load_incidents(tmp_path)
        assert len(loaded) == 1
        inc = loaded[0]
        assert inc.reason == "slo:p"
        assert inc.trace_id == sink.alerts[0].trace_id
        assert inc.detail["policy"] == "p"
        # The frozen ring holds the offending request's frame.
        offending = [f for f in inc.frames
                     if f["trace_id"] == inc.trace_id]
        assert len(offending) == 1
        assert offending[0]["tenant"] == "beta"
        assert offending[0]["wall_s"] > 0.05

    def test_exemplar_in_breached_bucket_resolves_to_trace(self, tmp_path):
        obs, engine, sink, recorder, records = self._run(tmp_path)
        alert = sink.alerts[0]
        ex = obs.serve_metrics.request_latency.exemplars(tenant="beta")
        breached = {le: e for le, e in ex.items()
                    if e["value"] > alert.objective_s}
        assert breached, f"no exemplar above the objective in {ex}"
        (le, e), = breached.items()
        assert e["exemplar"] == str(alert.trace_id)
        # ...and that trace id names a real span tree.
        tree = obs.tracer.render_tree(trace_id=int(e["exemplar"]))
        assert "serve.request" in tree
        assert "tenant=beta" in tree

    def test_slo_families_exported(self, tmp_path):
        obs, engine, sink, recorder, records = self._run(tmp_path)
        from test_obs_metrics import parse_prometheus

        fams = parse_prometheus(obs.to_prometheus())
        assert fams["repro_slo_alerts_total"]["samples"][
            ("repro_slo_alerts_total", (("policy", "p"),))
        ] == 1
        s = fams["repro_slo_requests_total"]["samples"]
        assert s[("repro_slo_requests_total",
                  (("policy", "p"), ("verdict", "breach")))] == 2
        assert s[("repro_slo_requests_total",
                  (("policy", "p"), ("verdict", "good")))] == 8
        assert fams["repro_slo_budget_remaining"]["type"] == "gauge"
        assert fams["repro_slo_burn_rate"]["samples"][
            ("repro_slo_burn_rate",
             (("policy", "p"), ("window", "fast")))
        ] == 0.0  # recovered by the end of the run


class TestSLOCommand:
    def test_slo_verb_end_to_end(self, tmp_path, capsys):
        inc_dir = tmp_path / "inc"
        alerts = tmp_path / "alerts.jsonl"
        rc = main([
            "slo", "--requests", "12", "--tenants", "acme,beta",
            "--objective-ms", "50", "--target", "0.5",
            "--window", "8", "--fast-window", "2",
            "--fault-delay-ms", "80", "--max-faults", "2",
            "--incident-dir", str(inc_dir),
            "--alerts-jsonl", str(alerts),
            "--expect-alert",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        # One policy per tenant; each tenant's single injected breach
        # fires one alert when its fast window fills.
        assert "ALERT p-acme" in out
        assert "ALERT p-beta" in out
        assert "incidents dumped: 2" in out
        # The exemplar resolution prints the offending span tree.
        assert "exemplar for breached bucket" in out
        assert "serve.request" in out
        assert len(alerts.read_text().splitlines()) == 2
        assert len(list(inc_dir.glob("incident-*.jsonl"))) == 2

    def test_expect_alert_fails_without_breaches(self, tmp_path, capsys):
        rc = main([
            "slo", "--requests", "6", "--objective-ms", "60000",
            "--expect-alert",
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "EXPECTED AN ALERT" in captured.err

    def test_rejects_bad_policy_parameters(self):
        with pytest.raises(SystemExit):
            main(["slo", "--requests", "4", "--target", "1.5"])


class TestIncidentsCommand:
    def _dump_some(self, tmp_path):
        rec = FlightRecorder(capacity=4, incident_dir=tmp_path)
        for i in range(3):
            rec.record(tenant="t", wall_s=i * 1e-3, trace_id=i)
        rec.dump("slo:p", trace_id=2)
        rec.dump("timeout", trace_id=1)

    def test_lists_and_shows_incidents(self, tmp_path, capsys):
        self._dump_some(tmp_path)
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 incidents" in out
        assert "slo:p" in out and "timeout" in out

        assert main(["incidents", "--dir", str(tmp_path),
                     "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "incident #2: timeout" in out
        assert ">>" in out  # the triggering frame is marked

    def test_empty_dir_and_unknown_id(self, tmp_path, capsys):
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        assert "no incidents" in capsys.readouterr().out
        self._dump_some(tmp_path)
        with pytest.raises(SystemExit):
            main(["incidents", "--dir", str(tmp_path), "--show", "9"])

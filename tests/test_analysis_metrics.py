"""Metric helper tests."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    MethodResult,
    geometric_mean,
    quartiles,
    speedup_summary,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        vals = [0.5, 2.0, 8.0]
        assert geometric_mean([v * 10 for v in vals]) == pytest.approx(
            10 * geometric_mean(vals)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_is_nan(self):
        assert np.isnan(geometric_mean([]))


class TestSpeedupSummary:
    def test_fields(self):
        s = speedup_summary([1.0, 2.0, 4.0])
        assert s["mean"] == pytest.approx(7 / 3)
        assert s["gmean"] == pytest.approx(2.0)
        assert s["max"] == 4.0 and s["min"] == 1.0 and s["count"] == 3


class TestQuartiles:
    def test_five_numbers(self):
        q = quartiles(np.arange(1, 101))
        assert q["min"] == 1 and q["max"] == 100
        assert q["median"] == pytest.approx(50.5)
        assert q["q1"] < q["median"] < q["q3"]


class TestMethodResult:
    def test_amortized(self):
        r = MethodResult(
            matrix="m", method="x", device="d", n=10, nnz=20,
            solve_time_s=0.5, preprocess_time_s=2.0, gflops=1.0,
        )
        assert r.amortized(10) == pytest.approx(7.0)

"""Unit tests for the segmented-array primitives."""

import numpy as np
import pytest

from repro.utils.arrays import (
    counts_to_indptr,
    gather_row_ranges,
    indptr_to_counts,
    segment_ids,
    segment_sums,
)


class TestCountsToIndptr:
    def test_basic(self):
        assert counts_to_indptr(np.array([2, 0, 3])).tolist() == [0, 2, 2, 5]

    def test_empty(self):
        assert counts_to_indptr(np.array([], dtype=int)).tolist() == [0]

    def test_roundtrip(self):
        counts = np.array([3, 1, 0, 0, 7, 2])
        assert indptr_to_counts(counts_to_indptr(counts)).tolist() == counts.tolist()

    def test_dtype_is_int64(self):
        assert counts_to_indptr(np.array([1, 2], dtype=np.int32)).dtype == np.int64


class TestGatherRowRanges:
    def test_all_rows_identity(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        flat, seg = gather_row_ranges(indptr, np.arange(3))
        assert flat.tolist() == [0, 1, 2, 3, 4]
        assert seg.tolist() == [0, 2, 2, 5]

    def test_subset_and_order(self):
        indptr = np.array([0, 2, 2, 5, 9], dtype=np.int64)
        flat, seg = gather_row_ranges(indptr, np.array([3, 0]))
        assert flat.tolist() == [5, 6, 7, 8, 0, 1]
        assert seg.tolist() == [0, 4, 6]

    def test_empty_rows_only(self):
        indptr = np.array([0, 0, 0], dtype=np.int64)
        flat, seg = gather_row_ranges(indptr, np.array([0, 1]))
        assert len(flat) == 0
        assert seg.tolist() == [0, 0, 0]

    def test_empty_selection(self):
        indptr = np.array([0, 3], dtype=np.int64)
        flat, seg = gather_row_ranges(indptr, np.array([], dtype=np.int64))
        assert len(flat) == 0 and seg.tolist() == [0]

    def test_repeated_rows(self):
        indptr = np.array([0, 2, 4], dtype=np.int64)
        flat, _ = gather_row_ranges(indptr, np.array([1, 1]))
        assert flat.tolist() == [2, 3, 2, 3]


class TestSegmentOps:
    def test_segment_ids(self):
        assert segment_ids(np.array([0, 2, 2, 5])).tolist() == [0, 0, 2, 2, 2]

    def test_segment_sums_with_empty_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        seg = np.array([0, 2, 2, 4])
        assert segment_sums(vals, seg).tolist() == [3.0, 0.0, 7.0]

    def test_segment_sums_empty_input(self):
        out = segment_sums(np.array([]), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]

    def test_segment_sums_matches_reduceat_semantics(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 5, size=50)
        seg = counts_to_indptr(counts)
        vals = rng.standard_normal(int(seg[-1]))
        expected = [vals[seg[i] : seg[i + 1]].sum() for i in range(50)]
        assert np.allclose(segment_sums(vals, seg), expected)

    def test_segment_sums_preserves_float32(self):
        vals = np.ones(4, dtype=np.float32)
        out = segment_sums(vals, np.array([0, 2, 4]))
        assert out.dtype == np.float32

"""Tests for the differential fuzzer: determinism, coverage, self-test."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.formats.triangular import is_lower_triangular, is_upper_triangular
from repro.validate.fuzz import (
    BROKEN_METHOD,
    FAMILIES,
    FuzzCase,
    broken_solver,
    minimize_failure,
    run_case,
    run_fuzz,
    sample_case,
)


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_builders_emit_lower_triangular(self, family):
        rng = np.random.default_rng(42)
        L = FAMILIES[family](rng, 50)
        assert L.n_rows == L.n_cols
        assert is_lower_triangular(L)
        assert np.all(L.diagonal() != 0)

    def test_hypersparse_family_is_hypersparse(self):
        # The family exists to drive the DCSR path: nnz per row must be
        # far below the matrix dimension.
        rng = np.random.default_rng(0)
        L = FAMILIES["hypersparse"](rng, 200)
        assert L.nnz / L.n_rows < 10


class TestFuzzCase:
    def test_build_is_deterministic(self):
        case = FuzzCase(family="uniform", seed=7, size=40)
        A1, b1 = case.build()
        A2, b2 = case.build()
        assert np.array_equal(A1.to_dense(), A2.to_dense())
        assert np.array_equal(b1, b2)

    def test_upper_flag_mirrors(self):
        case = FuzzCase(family="banded", seed=3, size=30, upper=True)
        A, _ = case.build()
        assert is_upper_triangular(A.sort_indices())

    def test_multi_rhs_and_int_dtype(self):
        case = FuzzCase(family="chain", seed=5, size=25, n_rhs=3, b_dtype="int32")
        _, b = case.build()
        assert b.shape == (25, 3) and b.dtype == np.int32

    def test_token_round_trip(self):
        case = FuzzCase(
            family="grid2d", seed=11, size=64, upper=True, n_rhs=2, b_dtype="int64"
        )
        assert FuzzCase.from_token(case.token()) == case

    def test_token_carries_scheduler_and_sync(self):
        case = FuzzCase(
            family="banded", seed=9, size=40,
            scheduler="superstep", sync="barrier",
        )
        token = case.token()
        assert token.endswith(":superstep:barrier")
        assert FuzzCase.from_token(token) == case

    def test_legacy_six_field_token_defaults_scheduler(self):
        # pre-1.3 tokens (no scheduler/sync fields) still replay, under
        # the historical eft/p2p defaults
        case = FuzzCase.from_token("uniform:1:10:L:1:float64")
        assert case.scheduler == "eft" and case.sync == "p2p"

    @pytest.mark.parametrize(
        "token",
        [
            "nonsense",
            "nofamily:1:10:L:1:float64",
            "uniform:1:10:X:1:float64",
            "uniform:1:10:L:1:notadtype",
            "uniform:1:10:L:1:float64:notasched:p2p",
            "uniform:1:10:L:1:float64:eft:notasync",
            "uniform:1:10:L:1:float64:eft",
        ],
    )
    def test_bad_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            FuzzCase.from_token(token)

    def test_sampler_covers_variants(self):
        fams = list(FAMILIES)
        cases = [sample_case(0, r, fams, 100) for r in range(24)]
        assert {c.family for c in cases} == set(fams)
        assert any(c.upper for c in cases)
        assert any(c.n_rhs > 1 for c in cases)
        assert any(np.dtype(c.b_dtype).kind == "i" for c in cases)
        # Same (seed, round) -> same case.
        assert cases[5] == sample_case(0, 5, fams, 100)
        assert cases[5] != sample_case(1, 5, fams, 100)

    def test_sampler_covers_scheduler_sync_axis(self):
        from repro.dist import SYNC_MODES, available_schedulers

        fams = list(FAMILIES)
        cases = [sample_case(3, r, fams, 100) for r in range(60)]
        assert {c.scheduler for c in cases} == set(available_schedulers())
        assert {c.sync for c in cases} == set(SYNC_MODES)


class TestRunFuzz:
    def test_clean_run_all_methods(self):
        report = run_fuzz(rounds=12, seed=0, base_size=60, include_service=True)
        assert report.ok, report.render()
        assert report.n_cases == 12
        assert report.n_checks > 12
        assert "all methods agree" in report.render()

    def test_broken_solver_is_caught_and_minimized(self):
        with broken_solver() as name:
            report = run_fuzz(
                rounds=4,
                seed=0,
                methods=[name],
                base_size=80,
                include_service=False,
            )
        assert not report.ok
        f = report.failures[0]
        assert f.method == BROKEN_METHOD and f.kind == "mismatch"
        # Minimization shrank the case and kept it failing.
        assert f.minimized is not None
        assert f.minimized.size <= f.case.size
        assert f.minimized.size <= 10
        # The reproduction command is paste-ready and carries the token.
        assert f.minimized.token() in f.repro_command
        assert "-m repro fuzz --replay" in f.repro_command
        assert f.repro_command in report.render()

    def test_minimize_drops_rhs_and_mirror(self):
        with broken_solver() as name:
            case = FuzzCase(
                family="uniform", seed=2, size=64, upper=True, n_rhs=3
            )
            failures = run_case(case, [name])
            assert failures
            small = minimize_failure(failures[0])
        assert small.n_rhs == 1 and not small.upper
        assert small.size <= 16

    def test_early_stop_on_max_failures(self):
        with broken_solver() as name:
            report = run_fuzz(
                rounds=50,
                seed=0,
                methods=[name],
                include_service=False,
                minimize=False,
                max_failures=3,
            )
        assert len(report.failures) >= 3
        assert report.n_cases < 50

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(rounds=1, families=["galaxy"])
        with pytest.raises(ValueError):
            run_fuzz(rounds=1, methods=["warp-drive"])


class TestFuzzCli:
    def test_cli_clean_run_exits_zero(self, capsys):
        rc = cli_main(["fuzz", "--rounds", "6", "--seed", "0", "--size", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all methods agree" in out

    def test_cli_self_test_exits_zero(self, capsys):
        rc = cli_main(["fuzz", "--self-test", "--rounds", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "self-test OK" in out
        assert "--replay" in out  # reproduction commands printed

    def test_cli_replay_good_case(self, capsys):
        rc = cli_main(
            ["fuzz", "--replay", "chain:2:12:L:1:int64", "--methods", "syncfree"]
        )
        assert rc == 0
        assert "agree" in capsys.readouterr().out

    def test_cli_replay_detects_broken_method(self, capsys):
        with broken_solver() as name:
            rc = cli_main(
                ["fuzz", "--replay", "uniform:1:16:L:1:float64", "--methods", name]
            )
        out = capsys.readouterr().out
        assert rc == 1
        assert "mismatch" in out and "reproduce:" in out

    def test_cli_bad_replay_token_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["fuzz", "--replay", "not-a-token"])

"""LevelSchedule construction and sweep-solve tests."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.formats import CSRMatrix
from repro.graph import compute_levels
from repro.kernels import prepare_lower, solve_serial
from repro.kernels.sweep import build_level_schedule, sweep_solve
from repro.matrices.generators import chain_matrix, layered_random

from conftest import random_lower


@pytest.fixture
def sched(medium_lower):
    return build_level_schedule(prepare_lower(medium_lower))


class TestScheduleStructure:
    def test_counts_consistent(self, sched, medium_lower):
        assert sched.n == medium_lower.n_rows
        assert int(sched.level_rows.sum()) == medium_lower.n_rows
        strict_nnz = medium_lower.nnz - medium_lower.n_rows
        assert int(sched.level_nnz.sum()) == strict_nnz
        assert len(sched.entry_cols) == strict_nnz

    def test_items_group_by_level(self, sched, medium_lower):
        lv = compute_levels(medium_lower)
        for l in range(sched.nlevels):
            rows = sched.items[sched.level_ptr[l] : sched.level_ptr[l + 1]]
            assert np.all(lv[rows] == l)

    def test_entry_ranges_align(self, sched):
        assert sched.entry_ptr[-1] == len(sched.entry_cols)
        assert np.all(np.diff(sched.entry_ptr) == sched.level_nnz)

    def test_local_rows_in_range(self, sched):
        for l in range(sched.nlevels):
            z0, z1 = sched.entry_ptr[l], sched.entry_ptr[l + 1]
            if z1 > z0:
                local = sched.entry_local_row[z0:z1]
                assert local.min() >= 0
                assert local.max() < sched.level_rows[l]

    def test_maxlen_and_padded(self, sched, medium_lower):
        strict, _ = (
            prepare_lower(medium_lower).strict,
            None,
        )
        counts = strict.row_counts()
        assert int(sched.level_maxlen.max()) == int(counts.max())
        assert np.all(sched.level_padded >= sched.level_nnz)

    def test_thin_rows_counted(self):
        L = chain_matrix(50, extra_nnz_per_row=0.0, rng=np.random.default_rng(0))
        sched = build_level_schedule(prepare_lower(L))
        # every strict row has exactly 1 entry -> thin
        assert int(sched.level_thin_rows.sum()) == 50  # incl. level-0 row

    def test_precomputed_levels_accepted(self, medium_lower):
        prep = prepare_lower(medium_lower)
        lv = compute_levels(medium_lower)
        sched = build_level_schedule(prep, levels=lv)
        assert sched.nlevels == int(lv.max()) + 1


class TestSweepSolve:
    def test_matches_serial(self, sched, medium_lower, rng):
        b = rng.standard_normal(medium_lower.n_rows)
        assert np.allclose(
            sweep_solve(sched, b), solve_serial(medium_lower, b), rtol=1e-10
        )

    def test_b_length_check(self, sched):
        with pytest.raises(ShapeMismatchError):
            sweep_solve(sched, np.ones(sched.n + 5))

    def test_diagonal_matrix(self):
        L = CSRMatrix.from_dense(np.diag(np.arange(2.0, 10.0)))
        sched = build_level_schedule(prepare_lower(L))
        assert sched.nlevels == 1
        x = sweep_solve(sched, np.ones(8))
        assert np.allclose(x, 1 / np.arange(2.0, 10.0))

    def test_dtype_follows_inputs(self, medium_lower):
        prep = prepare_lower(medium_lower.astype(np.float32))
        sched = build_level_schedule(prep)
        x = sweep_solve(sched, np.ones(medium_lower.n_rows, dtype=np.float32))
        assert x.dtype == np.float32

    def test_layered_profile(self):
        L = layered_random(
            np.array([30, 20, 10]), 4.0, np.random.default_rng(1)
        )
        sched = build_level_schedule(prepare_lower(L))
        assert sched.level_rows.tolist() == [30, 20, 10]
        b = np.ones(60)
        assert np.allclose(L.matvec(sweep_solve(sched, b)), b, atol=1e-10)

"""Correctness of the three block algorithms (Algorithms 4, 5, 6)."""

import numpy as np
import pytest

from repro.core.column_block import build_column_block_plan
from repro.core.recursive_block import build_recursive_block_plan, recursive_ranges
from repro.core.row_block import build_row_block_plan
from repro.core.plan import SpMVSegment, TriSegment
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import solve_serial
from repro.matrices.generators import (
    chain_matrix,
    grid_laplacian_2d,
    layered_random,
    powerlaw_matrix,
)

from conftest import random_lower

DEV = TITAN_RTX_SCALED

BUILDERS = {
    "column": lambda L, p: build_column_block_plan(L, p, DEV),
    "row": lambda L, p: build_row_block_plan(L, p, DEV),
    "recursive": lambda L, p: build_recursive_block_plan(
        L, int(np.log2(p)), DEV
    ),
}


class TestRecursiveRanges:
    def test_depth_zero(self):
        assert list(recursive_ranges(0, 8, 0)) == [("tri", 0, 8)]

    def test_depth_one(self):
        ops = list(recursive_ranges(0, 8, 1))
        assert ops == [("tri", 0, 4), ("spmv", 4, 8, 0, 4), ("tri", 4, 8)]

    def test_depth_two_structure(self):
        ops = list(recursive_ranges(0, 16, 2))
        tris = [o for o in ops if o[0] == "tri"]
        spmvs = [o for o in ops if o[0] == "spmv"]
        assert len(tris) == 4 and len(spmvs) == 3
        # In-order: when a square executes, all the x it reads is solved.
        covered = 0
        for op in ops:
            if op[0] == "tri":
                assert op[1] == covered
                covered = op[2]
            else:
                row_lo, row_hi, col_lo, col_hi = op[1:]
                assert col_hi == row_lo  # reads exactly the x above it
                assert col_hi <= covered  # already solved

    def test_tiny_range_stops_recursion(self):
        ops = list(recursive_ranges(0, 1, 5))
        assert ops == [("tri", 0, 1)]

    def test_covers_all_rows_once(self):
        ops = list(recursive_ranges(0, 37, 3))
        rows = []
        for op in ops:
            if op[0] == "tri":
                rows.extend(range(op[1], op[2]))
        assert sorted(rows) == list(range(37))


@pytest.mark.parametrize("scheme", list(BUILDERS))
class TestBlockCorrectness:
    @pytest.mark.parametrize("parts", [2, 4, 8])
    def test_random_matrix(self, scheme, parts, rng):
        L = random_lower(300, 0.03, seed=parts)
        b = rng.standard_normal(300)
        x_ref = solve_serial(L, b)
        plan = BUILDERS[scheme](L, parts)
        x, report = plan.solve(b, DEV)
        assert np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)
        assert report.flops == pytest.approx(2.0 * plan.total_nnz)

    def test_chain(self, scheme, rng):
        L = chain_matrix(200, rng=np.random.default_rng(1))
        b = rng.standard_normal(200)
        x, _ = BUILDERS[scheme](L, 4).solve(b, DEV)
        assert np.allclose(L.matvec(x), b, atol=1e-8)

    def test_grid(self, scheme, rng):
        L = grid_laplacian_2d(18, 14, rng=np.random.default_rng(2))
        b = rng.standard_normal(L.n_rows)
        x, _ = BUILDERS[scheme](L, 8).solve(b, DEV)
        assert np.allclose(L.matvec(x), b, atol=1e-8)

    def test_powerlaw(self, scheme, rng):
        L = powerlaw_matrix(400, 4.0, rng=np.random.default_rng(3))
        b = rng.standard_normal(400)
        x, _ = BUILDERS[scheme](L, 8).solve(b, DEV)
        assert np.allclose(L.matvec(x), b, atol=1e-8)

    def test_layered(self, scheme, rng):
        L = layered_random(
            np.array([100, 80, 60, 40, 20]), 5.0, np.random.default_rng(4)
        )
        b = rng.standard_normal(300)
        x, _ = BUILDERS[scheme](L, 4).solve(b, DEV)
        assert np.allclose(L.matvec(x), b, atol=1e-8)

    def test_single_part_degenerates_to_whole_solve(self, scheme, rng):
        L = random_lower(100, 0.05, seed=8)
        b = rng.standard_normal(100)
        plan = BUILDERS[scheme](L, 1)
        assert plan.n_spmv_segments == 0
        assert plan.n_tri_segments == 1
        x, _ = plan.solve(b, DEV)
        assert np.allclose(L.matvec(x), b, atol=1e-9)


class TestPlanStructure:
    def test_column_block_counts(self):
        L = random_lower(256, 0.05, seed=5)
        plan = build_column_block_plan(L, 4, DEV)
        # Dense-enough matrix: 4 triangles, up to 3 rectangles.
        assert plan.n_tri_segments == 4
        assert plan.n_spmv_segments == 3
        # Column rects span all remaining rows.
        for seg in plan.spmv_segments:
            assert seg.row_hi == 256

    def test_row_block_counts(self):
        L = random_lower(256, 0.05, seed=6)
        plan = build_row_block_plan(L, 4, DEV)
        assert plan.n_tri_segments == 4
        assert plan.n_spmv_segments == 3
        # Row rects start at column 0.
        for seg in plan.spmv_segments:
            assert seg.col_lo == 0

    def test_recursive_block_counts(self):
        L = random_lower(256, 0.05, seed=7)
        plan = build_recursive_block_plan(L, 2, DEV)
        assert plan.n_tri_segments == 4
        assert plan.n_spmv_segments == 3
        # Recursive squares read exactly the x above them.
        for seg in plan.spmv_segments:
            assert seg.col_hi == seg.row_lo

    def test_nnz_conserved(self):
        L = random_lower(200, 0.08, seed=8)
        for scheme, builder in BUILDERS.items():
            plan = builder(L, 4)
            assert plan.total_nnz == L.nnz, scheme

    def test_empty_spmv_blocks_skipped(self):
        """Block-diagonal matrix: every off-diagonal block is empty."""
        import numpy as np
        from repro.formats import CSRMatrix

        blocks = np.kron(np.eye(4), np.tril(np.ones((8, 8))))
        L = CSRMatrix.from_dense(blocks + np.eye(32))
        plan = build_recursive_block_plan(L, 2, DEV)
        assert plan.n_spmv_segments == 0

    def test_preprocess_report_populated(self):
        L = random_lower(200, 0.05, seed=9)
        plan = build_column_block_plan(L, 4, DEV)
        rep = plan.preprocess_report
        assert rep.time_s > 0
        assert rep.detail["n_segments"] == plan.n_tri_segments + plan.n_spmv_segments

    def test_kernel_histogram(self):
        L = random_lower(200, 0.05, seed=10)
        plan = build_recursive_block_plan(L, 2, DEV)
        hist = plan.kernel_histogram()
        assert sum(hist.values()) == len(plan.segments)

    def test_fixed_kernels_respected(self):
        L = random_lower(200, 0.05, seed=11)
        plan = build_recursive_block_plan(
            L, 2, DEV, fixed_tri="syncfree", fixed_spmv="vector-csr"
        )
        for seg in plan.segments:
            if isinstance(seg, TriSegment):
                assert seg.kernel.name == "syncfree"
            else:
                assert seg.kernel.name == "vector-csr"

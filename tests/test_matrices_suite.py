"""Suite and representative-collection tests."""

import numpy as np
import pytest

from repro.formats.triangular import is_lower_triangular
from repro.graph import compute_levels, n_levels, parallelism_stats
from repro.matrices.representative import (
    REPRESENTATIVE_PAPER_DATA,
    representative_matrices,
)
from repro.matrices.suite import MatrixSpec, generate, scaled_suite


class TestScaledSuite:
    def test_population_size_and_groups(self):
        specs = scaled_suite(0.05)
        assert len(specs) >= 20
        groups = {s.group for s in specs}
        assert {"pde-2d", "pde-3d", "optimization", "circuit", "network",
                "banded", "random", "serial"} <= groups

    def test_unique_names(self):
        names = [s.name for s in scaled_suite(0.1)]
        assert len(names) == len(set(names))

    def test_all_buildable_and_triangular(self):
        for spec in scaled_suite(0.02):
            L = generate(spec)
            assert is_lower_triangular(L), spec.name
            assert np.all(L.diagonal() != 0), spec.name
            assert L.n_rows >= 64

    def test_deterministic_builds(self):
        spec = scaled_suite(0.05)[5]
        a, b = spec.build(), spec.build()
        assert np.array_equal(a.data, b.data)

    def test_scale_grows_sizes(self):
        small = sum(s.build().n_rows for s in scaled_suite(0.02)[:4])
        big = sum(s.build().n_rows for s in scaled_suite(0.08)[:4])
        assert big > small

    def test_contains_serial_class(self):
        serial = [s for s in scaled_suite(0.05) if s.group == "serial"]
        for spec in serial:
            L = spec.build()
            assert n_levels(compute_levels(L)) == L.n_rows


class TestRepresentatives:
    @pytest.fixture(scope="class")
    def reps(self):
        return {s.name: s.build() for s in representative_matrices(0.12)}

    def test_six_matrices(self, reps):
        assert set(reps) == set(REPRESENTATIVE_PAPER_DATA)

    def test_nlpkkt_two_levels(self, reps):
        st = parallelism_stats(reps["nlpkkt200_like"])
        assert st.nlevels == 2
        assert st.min_parallelism == st.max_parallelism  # perfectly balanced

    def test_mawi_nineteen_levels_skewed(self, reps):
        st = parallelism_stats(reps["mawi_like"])
        assert st.nlevels == 19
        assert st.max_parallelism > 100 * st.min_parallelism

    def test_kkt_power_seventeen_levels(self, reps):
        assert parallelism_stats(reps["kkt_power_like"]).nlevels == 17

    def test_fullchip_levels_with_serial_tail(self, reps):
        st = parallelism_stats(reps["fullchip_like"])
        assert st.nlevels == 324
        assert st.min_parallelism == 1

    def test_vas_stokes_deep_limited(self, reps):
        st = parallelism_stats(reps["vas_stokes_like"])
        assert st.nlevels > 200
        assert st.max_parallelism < 64

    def test_tmt_fully_serial(self, reps):
        st = parallelism_stats(reps["tmt_sym_like"])
        assert st.nlevels == st.n_rows
        assert st.max_parallelism == 1

    def test_density_fingerprints(self, reps):
        """nnz/row within a factor ~2 of the paper's values."""
        targets = {"nlpkkt200_like": 14.3, "kkt_power_like": 4.1,
                   "vas_stokes_like": 22.1, "tmt_sym_like": 4.0}
        for name, target in targets.items():
            L = reps[name]
            assert L.nnz / L.n_rows == pytest.approx(target, rel=0.6), name

    def test_paper_data_table_complete(self):
        for name, row in REPRESENTATIVE_PAPER_DATA.items():
            assert len(row) == 6
            assert row[0] > 0 and row[1] > 0

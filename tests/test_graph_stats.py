"""Feature-extraction tests (adaptive-selection inputs, Table 4 columns)."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.graph import (
    parallelism_stats,
    square_features,
    triangle_features,
)
from repro.graph.stats import row_length_imbalance
from repro.matrices.generators import chain_matrix, layered_random


class TestParallelismStats:
    def test_layered_profile(self):
        sizes = np.array([30, 20, 10])
        L = layered_random(sizes, rng=np.random.default_rng(0))
        st = parallelism_stats(L)
        assert st.nlevels == 3
        assert st.min_parallelism == 10
        assert st.max_parallelism == 30
        assert st.avg_parallelism == pytest.approx(20.0)
        assert st.n_rows == 60 and st.nnz == L.nnz

    def test_chain(self):
        L = chain_matrix(25, extra_nnz_per_row=0.0, rng=np.random.default_rng(1))
        st = parallelism_stats(L)
        assert st.nlevels == 25
        assert st.min_parallelism == st.max_parallelism == 1

    def test_diag(self):
        st = parallelism_stats(CSRMatrix.from_dense(np.eye(9)))
        assert st.nlevels == 1 and st.max_parallelism == 9

    def test_row_tuple_order(self):
        st = parallelism_stats(CSRMatrix.from_dense(np.eye(3)))
        assert st.row() == (3, 3, 1, 3, 3.0, 3)


class TestTriangleFeatures:
    def test_diagonal_only(self):
        f = triangle_features(CSRMatrix.from_dense(np.eye(7) * 3.0))
        assert f.diagonal_only
        assert f.nnz_per_row == 1.0 and f.nlevels == 1

    def test_dense_lower(self):
        L = CSRMatrix.from_dense(np.tril(np.ones((6, 6))))
        f = triangle_features(L)
        assert not f.diagonal_only
        assert f.nlevels == 6
        assert f.nnz_per_row == pytest.approx(21 / 6)

    def test_accepts_precomputed_levels(self):
        L = CSRMatrix.from_dense(np.eye(4))
        f = triangle_features(L, levels=np.zeros(4, dtype=np.int64))
        assert f.nlevels == 1


class TestSquareFeatures:
    def test_empty_ratio(self):
        d = np.zeros((10, 10))
        d[0, 3] = 1.0
        d[4, 1] = 1.0
        d[4, 2] = 1.0
        f = square_features(CSRMatrix.from_dense(d))
        assert f.empty_ratio == pytest.approx(0.8)
        assert f.nnz_per_row == pytest.approx(0.3)
        assert f.nnz_per_active_row == pytest.approx(3 / 2)

    def test_no_rows(self):
        f = square_features(CSRMatrix.empty(0, 5))
        assert f.empty_ratio == 0.0 and f.nnz_per_row == 0.0

    def test_full(self):
        f = square_features(CSRMatrix.from_dense(np.ones((4, 4))))
        assert f.empty_ratio == 0.0 and f.nnz_per_row == 4.0


class TestImbalance:
    def test_uniform_rows_give_one(self):
        A = CSRMatrix.from_dense(np.ones((64, 4)))
        assert row_length_imbalance(A) == pytest.approx(1.0)

    def test_single_long_row_dominates(self):
        d = np.zeros((64, 64))
        d[0, :] = 1.0
        d[1:, 0] = 1.0
        A = CSRMatrix.from_dense(d)
        assert row_length_imbalance(A) > 5.0

    def test_empty_matrix(self):
        assert row_length_imbalance(CSRMatrix.empty(4, 4)) == 1.0

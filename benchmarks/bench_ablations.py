"""Ablations of the §3.3-§3.4 design choices (beyond the paper's figures).

Four studies on a representative subset of the suite:

* level-set reordering on/off (the Figure 3 reorder);
* DCSR squares on/off (the hypersparse storage);
* adaptive kernel selection vs every fixed SpTRSV kernel;
* recursion-depth sweep around the §3.4 rule's choice.
"""

import numpy as np

from repro.core.planner import choose_depth
from repro.core.solver import RecursiveBlockSolver
from repro.gpu.device import TITAN_RTX_SCALED
from repro.matrices.suite import scaled_suite

from conftest import publish

DEV = TITAN_RTX_SCALED

#: suite members covering distinct structure classes
SUBSET = (
    "kkt_wide_a",
    "kkt_mid_b",
    "stokes_deep_a",
    "circuit_powerlaw_1",
    "powerlayer_wide",
    "grid2d_220x160",
)


def _subset(scale=0.5):
    return [
        (s.name, s.build()) for s in scaled_suite(scale) if s.name in SUBSET
    ]


def _solve_time(L, **kw):
    prepared = RecursiveBlockSolver(device=DEV, **kw).prepare(L)
    _, rep = prepared.solve(np.ones(L.n_rows))
    return rep.time_s


def test_ablation_reorder(benchmark):
    mats = _subset()

    def run():
        rows = []
        for name, L in mats:
            t_on = _solve_time(L, reorder=True)
            t_off = _solve_time(L, reorder=False)
            rows.append((name, t_on, t_off, t_off / t_on))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: level-set reordering (Figure 3)"]
    lines.append(f"  {'matrix':22s} {'reorder on':>12s} {'off':>12s} {'off/on':>8s}")
    for name, t_on, t_off, ratio in rows:
        lines.append(f"  {name:22s} {t_on*1e3:10.3f}ms {t_off*1e3:10.3f}ms {ratio:7.2f}x")
    publish("ablation_reorder", "\n".join(lines))
    # The reorder must help on average and never hurt badly.
    ratios = [r[3] for r in rows]
    assert np.exp(np.mean(np.log(ratios))) > 0.95
    assert max(ratios) > 1.0


def test_ablation_dcsr(benchmark):
    mats = _subset()

    def run():
        rows = []
        for name, L in mats:
            t_on = _solve_time(L, use_dcsr=True)
            t_off = _solve_time(L, use_dcsr=False)
            rows.append((name, t_on, t_off, t_off / t_on))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: DCSR storage for hypersparse squares (§3.3)"]
    for name, t_on, t_off, ratio in rows:
        lines.append(f"  {name:22s} dcsr {t_on*1e3:9.3f}ms csr {t_off*1e3:9.3f}ms  csr/dcsr {ratio:6.2f}x")
    publish("ablation_dcsr", "\n".join(lines))
    ratios = [r[3] for r in rows]
    assert max(ratios) >= 1.0  # DCSR helps somewhere
    assert min(ratios) > 0.6  # and never costs much


def test_ablation_adaptive_vs_fixed(benchmark):
    mats = _subset()

    def run():
        rows = []
        for name, L in mats:
            adaptive = _solve_time(L)
            fixed = {
                k: _solve_time(L, fixed_tri=k)
                for k in ("levelset", "syncfree", "cusparse")
            }
            rows.append((name, adaptive, fixed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: adaptive kernel selection vs fixed SpTRSV kernels"]
    for name, adaptive, fixed in rows:
        cells = " ".join(f"{k}:{v*1e3:8.3f}ms" for k, v in fixed.items())
        lines.append(f"  {name:22s} adaptive {adaptive*1e3:8.3f}ms | {cells}")
    publish("ablation_adaptive", "\n".join(lines))
    # Adaptive must track the best fixed choice within a modest factor on
    # every matrix (it cannot beat an oracle, but must not be fooled).
    for name, adaptive, fixed in rows:
        assert adaptive <= min(fixed.values()) * 1.8, name


def test_ablation_level_aligned_splits(benchmark):
    """Extension: snap splits to level boundaries vs the paper's midpoint."""
    mats = _subset()

    def run():
        rows = []
        for name, L in mats:
            t_mid = _solve_time(L, align_levels=False)
            t_aligned = _solve_time(L, align_levels=True)
            rows.append((name, t_mid, t_aligned, t_mid / t_aligned))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: level-aligned splits vs midpoint splits (extension)"]
    for name, t_mid, t_al, ratio in rows:
        lines.append(
            f"  {name:22s} midpoint {t_mid*1e3:9.3f}ms aligned "
            f"{t_al*1e3:9.3f}ms  mid/aligned {ratio:6.2f}x"
        )
    publish("ablation_aligned_splits", "\n".join(lines))
    # Alignment must never be catastrophic and should help somewhere.
    ratios = [r[3] for r in rows]
    assert min(ratios) > 0.5
    assert max(ratios) >= 1.0


def test_ablation_level_merging(benchmark):
    """Naumov's small-level merging on the basic level-set kernel."""
    import numpy as np

    from repro.kernels import LevelSetKernel
    from repro.matrices.generators import chain_matrix, grid_laplacian_2d

    mats = [
        ("chain_6k", chain_matrix(6000, rng=np.random.default_rng(0))),
        ("grid2d_120x90", grid_laplacian_2d(120, 90, rng=np.random.default_rng(1))),
    ]

    def run():
        rows = []
        for name, L in mats:
            b = np.ones(L.n_rows)
            _, plain = LevelSetKernel().solve_system(L, b, DEV)
            _, merged = LevelSetKernel(merge_levels=True).solve_system(L, b, DEV)
            rows.append((name, plain, merged))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: level-set kernel with merged small levels (Naumov)"]
    for name, plain, merged in rows:
        lines.append(
            f"  {name:16s} plain {plain.time_s*1e3:9.3f}ms "
            f"({plain.launches} launches) -> merged {merged.time_s*1e3:9.3f}ms "
            f"({merged.launches} launches)  {plain.time_s/merged.time_s:5.2f}x"
        )
    publish("ablation_level_merging", "\n".join(lines))
    for name, plain, merged in rows:
        assert merged.time_s <= plain.time_s * 1.01, name
        assert merged.launches <= plain.launches, name


def test_ablation_depth_sweep(benchmark):
    mats = _subset()

    def run():
        out = {}
        for name, L in mats:
            rule = choose_depth(L.n_rows, DEV)
            sweep = {}
            for d in sorted({0, max(0, rule - 2), rule, rule + 2}):
                sweep[d] = _solve_time(L, depth=d)
            out[name] = (rule, sweep)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: recursion depth around the §3.4 rule"]
    for name, (rule, sweep) in res.items():
        cells = "  ".join(f"d={d}:{t*1e3:8.3f}ms" for d, t in sweep.items())
        lines.append(f"  {name:22s} rule={rule}  {cells}")
    publish("ablation_depth", "\n".join(lines))
    # The rule's depth is within 2.2x of the best swept depth everywhere.
    for name, (rule, sweep) in res.items():
        assert sweep[rule] <= min(sweep.values()) * 2.2, name

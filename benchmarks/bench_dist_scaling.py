"""Strong scaling of the sharded executor (``repro.dist``).

Runs :mod:`repro.experiments.dist_scaling` — one column-block plan per
suite matrix, scheduled on 1, 2, and 4 simulated devices — and records
the *simulated* speedups (makespan on N devices vs the single-device
tiled cost).  Simulated numbers are deterministic functions of the plan
and the device model, so the gate is machine-independent and exactly
reproducible.

Writes ``BENCH_dist.json`` at the repository root.  The acceptance gate:

* at least half of the benchmarked matrices exceed ``SPEEDUP_TARGET``
  (1.5x) at 4 devices — the PR's scaling claim;
* no matrix falls below ``SPEEDUP_FLOOR`` (0.95x) at any device count
  (sharding must never *cost* simulated time, beyond scheduling noise
  on near-serial chains);
* 2-device speedups are monotone: ``speedup(4) >= speedup(2) - 0.05``;
* against a previously committed ``BENCH_dist.json``, per-matrix
  4-device speedups are bit-stable (they are simulated, not measured).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import dist_scaling

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dist.json"

SCALE = 0.05
#: the PR's strong-scaling claim at 4 devices
SPEEDUP_TARGET = 1.5
#: sharding must never cost simulated time (near-serial chains hover ~1x)
SPEEDUP_FLOOR = 0.95
#: simulated numbers are deterministic; allow only float-text roundtrip
BASELINE_RTOL = 1e-9


def run() -> dict:
    res = dist_scaling.run(scale=SCALE)
    series = {
        name: {
            "n": row["n"],
            "nnz": row["nnz"],
            "segments": row["segments"],
            "plan_time_s": row["plan_time_s"],
            "devices": {
                str(d): dict(stats) for d, stats in row["devices"].items()
            },
        }
        for name, row in res.rows.items()
    }
    speedups4 = [row["devices"]["4"]["speedup"] for row in series.values()]
    return {
        "workload": {
            "method": res.method,
            "nseg": res.nseg,
            "scale": SCALE,
            "device_grid": list(res.device_grid),
            "matrices": {
                name: {"n": row["n"], "nnz": row["nnz"]}
                for name, row in series.items()
            },
        },
        "series": series,
        "headline": {
            "n_matrices": len(series),
            "n_above_target_at_4": sum(
                1 for s in speedups4 if s > SPEEDUP_TARGET
            ),
            "max_speedup_at_4": max(speedups4),
            "speedup_target": SPEEDUP_TARGET,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    }


def render(result: dict) -> str:
    w = result["workload"]
    grid = w["device_grid"]
    head = "  ".join(f"{'x' + str(d):>7s}" for d in grid)
    lines = [
        f"sharded-executor strong scaling ({w['method']}, "
        f"nseg={w['nseg']}, simulated devices)",
        f"  {'matrix':<20} {'n':>6} {'seg':>5}  {head}  {'transfers@4':>11}",
    ]
    for name, row in result["series"].items():
        sp = "  ".join(
            f"{row['devices'][str(d)]['speedup']:6.2f}x" for d in grid
        )
        lines.append(
            f"  {name:<20} {row['n']:>6} {row['segments']:>5}  {sp}  "
            f"{row['devices'][str(grid[-1])]['transfers']:>11}"
        )
    h = result["headline"]
    lines.append(
        f"  {h['n_above_target_at_4']}/{h['n_matrices']} matrices above "
        f"{h['speedup_target']}x at 4 devices "
        f"(max {h['max_speedup_at_4']:.2f}x; "
        f"acceptance: >= {h['n_matrices'] // 2})"
    )
    return "\n".join(lines)


def check(result: dict, baseline: dict | None = None) -> None:
    h = result["headline"]
    assert h["n_above_target_at_4"] * 2 >= h["n_matrices"], (
        f"only {h['n_above_target_at_4']} of {h['n_matrices']} matrices "
        f"exceed {SPEEDUP_TARGET}x at 4 devices"
    )
    for name, row in result["series"].items():
        sp = {
            int(d): stats["speedup"] for d, stats in row["devices"].items()
        }
        for d, s in sp.items():
            assert s >= SPEEDUP_FLOOR, (name, d, s)
        assert abs(sp[1] - 1.0) < 1e-9, (name, sp[1])
        assert sp[4] >= sp[2] - 0.05, (name, sp)
    if baseline is not None:
        old_series = baseline.get("series", {})
        for name, row in result["series"].items():
            old = old_series.get(name, {}).get("devices", {}).get("4")
            if old is None:
                continue
            s_new, s_old = row["devices"]["4"]["speedup"], old["speedup"]
            assert abs(s_new - s_old) <= BASELINE_RTOL * max(1.0, s_old), (
                f"{name}: simulated 4-device speedup drifted from the "
                f"committed baseline: {s_new!r} vs {s_old!r} — simulated "
                "numbers are deterministic, so this is a behavior change; "
                "regenerate BENCH_dist.json deliberately if intended"
            )


def _load_baseline() -> dict | None:
    if BENCH_JSON.exists():
        try:
            return json.loads(BENCH_JSON.read_text())
        except Exception:
            return None
    return None


def test_dist_scaling(benchmark):
    baseline = _load_baseline()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("dist_scaling", render(result))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run()
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {BENCH_JSON}")

"""Scheduler shoot-out of the sharded executor (``repro.dist``).

Runs :mod:`repro.experiments.dist_scaling` — one column-block plan per
suite matrix, its segment DAG scheduled on 4, 8, and 16 simulated
devices of a two-tier hierarchical interconnect by every registered
scheduler under both sync modes — and records the full winner matrix.
Simulated numbers are deterministic functions of the plan, the device
model, and the interconnect, so the gate is machine-independent and
exactly reproducible.

Writes ``BENCH_dist.json`` at the repository root.  The acceptance gate:

* every scheduler x sync x device-count schedule passed the full
  invariant validation inside the experiment (validity gate — a combo
  that produces an invalid schedule fails the run, not just its cell);
* at least half of the benchmarked matrices exceed ``SPEEDUP_TARGET``
  (1.5x) winner speedup at the largest device count;
* no winner falls below ``SPEEDUP_FLOOR`` (0.95x) at any device count
  (with three policies to choose from, sharding must never *cost*
  simulated time beyond scheduling noise on near-serial chains);
* winner speedups are monotone in the device grid (within 0.05);
* at least one matrix has a **non-greedy** policy strictly beating
  greedy ``eft/p2p`` on simulated makespan — the reason the registry
  exists;
* against a previously committed ``BENCH_dist.json``, per-matrix winner
  makespans at every device count are bit-stable (they are simulated,
  not measured).  Pre-shoot-out baselines (no ``winner`` fields) skip
  the comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import dist_scaling

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dist.json"

SCALE = 0.05
#: the PR's strong-scaling claim at the largest device count
SPEEDUP_TARGET = 1.5
#: the winner must never cost simulated time (chains hover ~1x)
SPEEDUP_FLOOR = 0.95
#: simulated numbers are deterministic; allow only float-text roundtrip
BASELINE_RTOL = 1e-9


def run() -> dict:
    res = dist_scaling.run(scale=SCALE)
    series = {
        name: {
            "n": row["n"],
            "nnz": row["nnz"],
            "segments": row["segments"],
            "plan_time_s": row["plan_time_s"],
            "devices": {
                str(d): {
                    "winner": dev["winner"],
                    "winner_makespan_s": dev["winner_makespan_s"],
                    "winner_speedup": dev["winner_speedup"],
                    "eft_p2p_makespan_s": dev["eft_p2p_makespan_s"],
                    "combos": {
                        k: dict(stats) for k, stats in dev["combos"].items()
                    },
                }
                for d, dev in row["devices"].items()
            },
        }
        for name, row in res.rows.items()
    }
    top = str(max(res.device_grid))
    winners = [row["devices"][top]["winner_speedup"] for row in series.values()]
    non_greedy = sorted({
        name
        for name, row in series.items()
        for dev in row["devices"].values()
        if dev["winner_makespan_s"]
        < dev["eft_p2p_makespan_s"] * (1.0 - 1e-12)
        and not dev["winner"].startswith("eft/")
    })
    return {
        "workload": {
            "method": res.method,
            "nseg": res.nseg,
            "scale": SCALE,
            "node_size": res.node_size,
            "device_grid": list(res.device_grid),
            "schedulers": list(res.schedulers),
            "sync_modes": list(res.sync_modes),
            "matrices": {
                name: {"n": row["n"], "nnz": row["nnz"]}
                for name, row in series.items()
            },
        },
        "series": series,
        "headline": {
            "n_matrices": len(series),
            "n_above_target_at_top": sum(
                1 for s in winners if s > SPEEDUP_TARGET
            ),
            "max_winner_speedup": max(winners),
            "matrices_with_non_greedy_win": non_greedy,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    }


def render(result: dict) -> str:
    w = result["workload"]
    grid = w["device_grid"]
    head = "  ".join(f"{'x' + str(d):>18s}" for d in grid)
    lines = [
        f"sharded-executor scheduler shoot-out ({w['method']}, "
        f"nseg={w['nseg']}, {len(w['schedulers'])} schedulers x "
        f"{len(w['sync_modes'])} sync modes, "
        f"{w['node_size']}/node hierarchy)",
        f"  {'matrix':<20} {'n':>6} {'seg':>5}  {head}",
    ]
    for name, row in result["series"].items():
        cells = []
        for d in grid:
            dev = row["devices"][str(d)]
            cells.append(f"{dev['winner']:>12s} {dev['winner_speedup']:4.2f}x")
        lines.append(
            f"  {name:<20} {row['n']:>6} {row['segments']:>5}  "
            + "  ".join(f"{c:>18s}" for c in cells)
        )
    h = result["headline"]
    lines.append(
        f"  {h['n_above_target_at_top']}/{h['n_matrices']} matrices above "
        f"{h['speedup_target']}x winner speedup at x{grid[-1]} "
        f"(max {h['max_winner_speedup']:.2f}x; "
        f"acceptance: >= {h['n_matrices'] // 2}); non-greedy wins on: "
        + ", ".join(h["matrices_with_non_greedy_win"])
    )
    return "\n".join(lines)


def check(result: dict, baseline: dict | None = None) -> None:
    h = result["headline"]
    assert h["n_above_target_at_top"] * 2 >= h["n_matrices"], (
        f"only {h['n_above_target_at_top']} of {h['n_matrices']} matrices "
        f"exceed {SPEEDUP_TARGET}x winner speedup at the top device count"
    )
    assert h["matrices_with_non_greedy_win"], (
        "no matrix has a non-greedy scheduler strictly beating eft/p2p "
        "on simulated makespan — the registry's raison d'etre regressed"
    )
    grid = result["workload"]["device_grid"]
    for name, row in result["series"].items():
        sp = {
            int(d): dev["winner_speedup"]
            for d, dev in row["devices"].items()
        }
        for d, s in sp.items():
            assert s >= SPEEDUP_FLOOR, (name, d, s)
        for lo, hi in zip(grid, grid[1:]):
            assert sp[hi] >= sp[lo] - 0.05, (name, sp)
        for d, dev in row["devices"].items():
            # the winner really is the combo matrix's minimum
            best = min(
                stats["makespan_s"] for stats in dev["combos"].values()
            )
            assert dev["winner_makespan_s"] == best, (name, d)
    if baseline is not None:
        old_series = baseline.get("series", {})
        for name, row in result["series"].items():
            for d, dev in row["devices"].items():
                old = old_series.get(name, {}).get("devices", {}).get(d)
                if old is None or "winner_makespan_s" not in old:
                    continue  # pre-shoot-out baseline format
                m_new = dev["winner_makespan_s"]
                m_old = old["winner_makespan_s"]
                assert abs(m_new - m_old) <= BASELINE_RTOL * max(
                    1e-12, m_old
                ), (
                    f"{name} x{d}: simulated winner makespan drifted from "
                    f"the committed baseline: {m_new!r} vs {m_old!r} — "
                    "simulated numbers are deterministic, so this is a "
                    "behavior change; regenerate BENCH_dist.json "
                    "deliberately if intended"
                )


def _load_baseline() -> dict | None:
    if BENCH_JSON.exists():
        try:
            return json.loads(BENCH_JSON.read_text())
        except Exception:
            return None
    return None


def test_dist_scaling(benchmark):
    baseline = _load_baseline()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("dist_scaling", render(result))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run()
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {BENCH_JSON}")

"""Figure 7 — double/single precision performance-ratio box plots."""

from repro.experiments import fig7

from conftest import publish


def test_figure7(benchmark):
    res = benchmark.pedantic(lambda: fig7.run(scale=0.35), rounds=1, iterations=1)
    publish("fig7_precision", fig7.render(res))
    for device, per_method in res.ratios.items():
        for method, vals in per_method.items():
            med = sorted(vals)[len(vals) // 2]
            # Sparse kernels are structure-bound: the ratio sits well above
            # the dense-compute 0.5 for every method (paper: 0.7-0.95).
            assert med > 0.55, (device, method, med)
            assert med <= 1.05, (device, method, med)
        # Paper ordering: cuSPARSE is the most precision-sensitive method.
        med_of = {
            m: sorted(v)[len(v) // 2] for m, v in per_method.items()
        }
        assert med_of["cusparse"] <= med_of["syncfree"] + 0.05

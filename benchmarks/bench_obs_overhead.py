"""Enforced observability overhead budget for the serve warm path.

PR 3 measured the *disabled* observability path at ~0.3 % on
``bench_serve_throughput`` (one thread-local lookup per instrumentation
point).  This benchmark turns the *enabled* path into an enforced
budget: a :class:`SolveService` carrying a full bundle — tracer,
labelled metric families, an SLO policy evaluated per request, and the
always-on flight recorder ring — replays warm single-RHS solves of a
large suite matrix and must stay within ``OVERHEAD_CEILING`` of an
identical obs-off service.

Methodology: ONE plan-warmed service A/Bs its own instrumentation via
:meth:`SolveService.set_observability`, so both sides run the identical
compiled plan in the identical memory — two separate services would
differ by plan-allocation/cache-layout luck worth more than the budget
itself.  Solves alternate off/on one at a time and the overhead is the
*median of the paired differences* over the run: host-load excursions
hit adjacent solves of both sides and a handful of outlier pairs
cannot move a median, where a min- or mean-based estimator swings by
more than the budget between invocations.  The check also asserts the
observed half really recorded telemetry (spans per solve, recorder
frames, SLO observations) — a gate that silently measured a disabled
bundle would be meaningless.

Writes ``BENCH_obs_overhead.json`` at the repository root (and the
rendered summary to ``benchmarks/results/``).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.matrices.suite import generate, scaled_suite
from repro.obs import FlightRecorder, Observability, SLOEngine, SLOPolicy
from repro.serve import ServiceConfig, SolveService

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: suite matrix the warm loop replays (large enough that the solve,
#: not the instrumentation, dominates — the regime the budget is about)
MATRIX = "kkt_wide_b"
SCALE = 0.5
#: alternating (off, on) solve pairs; the median paired difference is
#: the overhead estimate
PAIRS = 120
#: the enforced budget: obs-on warm solves may cost at most this
#: fraction more than obs-off (tracer + metrics + SLO + recorder)
OVERHEAD_CEILING = 0.02


def _full_bundle() -> Observability:
    """The complete serve-path bundle, recorder and SLO engine included.

    The SLO objective is far above any warm solve so the run measures
    steady-state evaluation cost, not incident dumps."""
    engine = SLOEngine([
        SLOPolicy("warm-budget", objective_s=5.0, target=0.95,
                  window=64, fast_window=8),
    ])
    return Observability(slo=engine, recorder=FlightRecorder(capacity=256))


def run() -> dict:
    spec = {s.name: s for s in scaled_suite(scale=SCALE)}[MATRIX]
    A = generate(spec)
    b = np.ones(A.n_rows)

    obs = _full_bundle()
    svc = SolveService(ServiceConfig(max_workers=1))
    try:
        # Plan-build + one warm solve per side (first observed solve
        # freezes the instrumentation constants).
        svc.solve(A, b)
        svc.set_observability(obs)
        svc.solve(A, b)
        svc.set_observability(None)
        # Freeze the warmed heap (plan, aux structures, service) so
        # generational collections during the timed region only walk
        # each side's own allocation churn, not the multi-hundred-MB
        # plan state — whichever batch a full collection landed in
        # would otherwise eat a millisecond of one-sided noise.
        gc.collect()
        gc.freeze()

        offs = []
        ons = []
        for _ in range(PAIRS):
            svc.set_observability(None)
            t0 = time.perf_counter()
            svc.solve(A, b)
            offs.append(time.perf_counter() - t0)
            svc.set_observability(obs)
            t0 = time.perf_counter()
            svc.solve(A, b)
            ons.append(time.perf_counter() - t0)

        solves_on = 1 + PAIRS
        stats_all = svc.stats()
    finally:
        gc.unfreeze()
        svc.close()

    med_off = float(np.median(offs))
    med_on = float(np.median(ons))
    diffs = np.array(ons) - np.array(offs)
    med_diff = float(np.median(diffs))
    overhead = med_diff / med_off
    n_spans = len(obs.tracer.spans())
    slo_status = obs.slo.status()[0]
    return {
        "matrix": MATRIX,
        "scale": SCALE,
        "n": int(A.n_rows),
        "nnz": int(A.nnz),
        "pairs": PAIRS,
        "warm_solve_off_ms": med_off * 1e3,
        "warm_solve_on_ms": med_on * 1e3,
        "median_paired_diff_us": med_diff * 1e6,
        "overhead": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "solves_observed": solves_on,
        "spans_recorded": n_spans,
        "spans_per_solve": n_spans / solves_on,
        "frames_recorded": obs.recorder.total_recorded,
        "slo_observed": slo_status["n_observed"],
        "slo_breaches": slo_status["n_breaches"],
        "requests_completed": stats_all.completed,
    }


def render(result: dict) -> str:
    gate = "PASS" if result["overhead"] <= result["overhead_ceiling"] else "FAIL"
    return "\n".join([
        "observability overhead budget (obs-on vs obs-off warm solves)",
        f"  matrix {result['matrix']} (scale {result['scale']}, "
        f"n={result['n']}, nnz={result['nnz']})",
        f"  median over {result['pairs']} alternating solve pairs:",
        f"    obs-off {result['warm_solve_off_ms']:8.3f} ms",
        f"    obs-on  {result['warm_solve_on_ms']:8.3f} ms   "
        f"(tracer + metrics + SLO + recorder)",
        f"  median paired diff {result['median_paired_diff_us']:+.0f} us -> "
        f"overhead {result['overhead'] * 100:+.2f}%  "
        f"(budget {result['overhead_ceiling'] * 100:.0f}%)  [{gate}]",
        f"  telemetry while timed: {result['spans_recorded']} spans "
        f"({result['spans_per_solve']:.1f}/solve), "
        f"{result['frames_recorded']} recorder frames, "
        f"{result['slo_observed']} SLO evaluations",
    ])


def check(result: dict) -> None:
    # The enforced budget.
    assert result["overhead"] <= result["overhead_ceiling"], (
        f"obs-on warm-solve overhead {result['overhead'] * 100:.2f}% "
        f"exceeds the {result['overhead_ceiling'] * 100:.0f}% budget"
    )
    # The observed side must have been genuinely observed: every solve
    # framed by the recorder and judged by the SLO engine, with the
    # request + per-segment span tree intact.
    n = result["solves_observed"]
    assert result["frames_recorded"] == n, result
    assert result["slo_observed"] == n, result
    assert result["slo_breaches"] == 0, result
    # ...and the off side ran detached: the service completed both
    # halves, but only the obs-on half reached the bundle above.
    assert result["requests_completed"] == 2 * n, result
    assert result["spans_per_solve"] > 3, result


def test_obs_overhead(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("obs_overhead", render(result))


if __name__ == "__main__":
    result = run()
    check(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {BENCH_JSON}")

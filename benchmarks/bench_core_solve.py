"""Core solve-path regression suite: plan path vs compiled executor.

Times the repeated-solve hot path on six structurally distinct suite
matrices (deep chain, Stokes wall, KKT saddle, 2-D grid, wide band,
real ILU factor) in four series:

* ``cold_s``           — prepare + first solve (plan construction paid);
* ``warm_plan_s``      — ``plan.solve`` per call (the uncompiled path);
* ``warm_compiled_s``  — ``CompiledPlan.solve`` per call (the
  zero-allocation executor every cache hit lands on);
* ``multi_*_s``        — the fused ``solve_multi`` pair at k = 8;
* ``replan_s`` / ``rebind_s`` — values-only change: full plan rebuild
  vs rebinding the pattern plan onto new values (structural batching).

Writes ``BENCH_core.json`` at the repository root.  The acceptance gate
is *ratio-based* so it is stable across machines: per-call wall times
are best-of-``REPEATS`` loop averages taken in the same process, and the
headline is the geometric-mean compiled-over-plan speedup.  ``check``
fails if that speedup drops below ``SPEEDUP_FLOOR`` (1.3x, the PR's
claim) or regresses by more than 25% against a previously committed
``BENCH_core.json``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from dataclasses import replace

from repro import TITAN_RTX_SCALED
from repro.core.rebind import PlanRebinder, tracer_matrix
from repro.core.solver import SOLVERS
from repro.matrices.suite import scaled_suite

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_core.json"

METHOD = "recursive-block"
SCALE = 0.05
MATRICES = [
    "chain_tridiag",     # nlevels == n: the serial regime
    "stokes_deep_a",     # deep + heavy rows
    "kkt_mid_a",         # saddle-point two-phase structure
    "grid2d_160x120",    # PDE wavefronts
    "banded_256_1",      # wide band, dense-ish rows
    "ilu_factor_200x150",  # real ILU(0) factor
]
N_RHS = 8
#: per-series timing: best of REPEATS loop averages over ITERS calls
REPEATS = 3
ITERS = 10
#: acceptance floor for the geometric-mean compiled/plan speedup
SPEEDUP_FLOOR = 1.3
#: acceptance floor for the geomean replan/rebind speedup (values-only
#: change: rebinding the pattern plan must beat rebuilding it by >= 2x)
REBIND_FLOOR = 2.0
#: prepare is heavy; time the replan/rebind pair over fewer calls
REBIND_ITERS = 3
#: tolerated regression vs a previously committed BENCH_core.json
REGRESSION_RATIO = 0.75


def _best_loop(fn, iters: int = ITERS, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` average seconds per call over ``iters`` calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def _bench_matrix(spec) -> dict:
    A = spec.build()
    n = A.n_rows
    rng = np.random.default_rng(17)
    b = rng.standard_normal(n)
    B = rng.standard_normal((n, N_RHS))
    device = TITAN_RTX_SCALED

    t0 = time.perf_counter()
    solver = SOLVERS[METHOD](device=device)
    prepared = solver.prepare(A)
    x_cold, _ = prepared.plan.solve(b, device)
    cold_s = time.perf_counter() - t0

    compiled = prepared.compile()
    # Correctness gate before any timing: the compiled executor must
    # reproduce the plan path (same promoted dtype, same values).
    x_plan, rep_plan = prepared.plan.solve(b, device)
    x_comp, rep_comp = compiled.solve(b)
    err = float(np.max(np.abs(x_comp - x_plan)))
    scale = max(1.0, float(np.max(np.abs(x_plan))))
    assert err <= 1e-9 * scale, (spec.name, err)
    assert rep_comp.time_s == rep_plan.time_s, spec.name
    assert rep_comp.launches == rep_plan.launches, spec.name
    X_plan, _ = prepared.plan.solve_multi(B, device)
    X_comp, _ = compiled.solve_multi(B)  # first call captures the width
    errm = float(np.max(np.abs(X_comp - X_plan)))
    assert errm <= 1e-9 * max(1.0, float(np.max(np.abs(X_plan)))), (
        spec.name, errm,
    )

    warm_plan_s = _best_loop(lambda: prepared.plan.solve(b, device))
    warm_compiled_s = _best_loop(lambda: compiled.solve(b))
    multi_plan_s = _best_loop(lambda: prepared.plan.solve_multi(B, device))
    multi_compiled_s = _best_loop(lambda: compiled.solve_multi(B))

    # Values-only change: replan from scratch vs rebind the pattern plan.
    A2 = replace(
        A,
        data=(A.data * rng.uniform(0.5, 1.5, A.nnz)).astype(A.data.dtype),
        _validated=True,
    )
    prepared_t = SOLVERS[METHOD](device=device).prepare(tracer_matrix(A))
    binder = PlanRebinder(prepared_t.plan, A.nnz, A.data.dtype)
    # Correctness gate: the rebound plan must match a fresh build bitwise
    # (same segments, same kernels — only the values arrays differ).
    x_fresh, _ = SOLVERS[METHOD](device=device).prepare(A2).plan.solve(b, device)
    x_rebound, _ = binder.bind(A2.data).solve(b, device)
    assert np.array_equal(x_rebound, x_fresh), spec.name

    replan_s = _best_loop(
        lambda: SOLVERS[METHOD](device=device).prepare(A2),
        iters=REBIND_ITERS,
    )
    rebind_s = _best_loop(lambda: binder.bind(A2.data), iters=REBIND_ITERS)

    return {
        "n": n,
        "nnz": A.nnz,
        "cold_s": cold_s,
        "warm_plan_s": warm_plan_s,
        "warm_compiled_s": warm_compiled_s,
        "multi_plan_s": multi_plan_s,
        "multi_compiled_s": multi_compiled_s,
        "replan_s": replan_s,
        "rebind_s": rebind_s,
        "speedup_single": warm_plan_s / warm_compiled_s,
        "speedup_multi": multi_plan_s / multi_compiled_s,
        "speedup_rebind": replan_s / rebind_s,
    }


def _geomean(xs: list[float]) -> float:
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def run() -> dict:
    specs = {s.name: s for s in scaled_suite(SCALE)}
    missing = [name for name in MATRICES if name not in specs]
    assert not missing, f"suite is missing {missing}"
    series = {name: _bench_matrix(specs[name]) for name in MATRICES}
    singles = [row["speedup_single"] for row in series.values()]
    multis = [row["speedup_multi"] for row in series.values()]
    rebinds = [row["speedup_rebind"] for row in series.values()]
    return {
        "workload": {
            "method": METHOD,
            "scale": SCALE,
            "n_rhs": N_RHS,
            "iters": ITERS,
            "repeats": REPEATS,
            "matrices": {
                name: {"n": row["n"], "nnz": row["nnz"]}
                for name, row in series.items()
            },
        },
        "series": series,
        "headline": {
            "geomean_speedup_single": _geomean(singles),
            "geomean_speedup_multi": _geomean(multis),
            "geomean_rebind_speedup": _geomean(rebinds),
            "speedup_floor": SPEEDUP_FLOOR,
            "rebind_floor": REBIND_FLOOR,
        },
    }


def render(result: dict) -> str:
    lines = [
        f"core solve hot path ({METHOD}, plan path vs compiled executor)",
        f"  {'matrix':<20} {'n':>6} {'nnz':>7} "
        f"{'warm plan':>11} {'compiled':>11} {'speedup':>8} "
        f"{'multi x' + str(N_RHS):>9} {'rebind':>8}",
    ]
    for name, row in result["series"].items():
        lines.append(
            f"  {name:<20} {row['n']:>6} {row['nnz']:>7} "
            f"{row['warm_plan_s'] * 1e6:>9.1f}us {row['warm_compiled_s'] * 1e6:>9.1f}us "
            f"{row['speedup_single']:>7.2f}x {row['speedup_multi']:>8.2f}x "
            f"{row['speedup_rebind']:>7.2f}x"
        )
    h = result["headline"]
    lines.append(
        f"  geomean speedup: {h['geomean_speedup_single']:.2f}x single, "
        f"{h['geomean_speedup_multi']:.2f}x multi-RHS "
        f"(acceptance: >= {h['speedup_floor']}x); "
        f"values-only rebind {h['geomean_rebind_speedup']:.2f}x vs replan "
        f"(acceptance: >= {h['rebind_floor']}x)"
    )
    return "\n".join(lines)


def check(result: dict, baseline: dict | None = None) -> None:
    h = result["headline"]
    assert h["geomean_speedup_single"] >= SPEEDUP_FLOOR, h
    assert h["geomean_speedup_multi"] >= SPEEDUP_FLOOR, h
    assert h["geomean_rebind_speedup"] >= REBIND_FLOOR, h
    # Every matrix individually must at least not lose to the plan path,
    # and rebinding must never be slower than replanning.
    for name, row in result["series"].items():
        assert row["speedup_single"] >= 1.0, (name, row["speedup_single"])
        assert row["speedup_multi"] >= 1.0, (name, row["speedup_multi"])
        assert row["speedup_rebind"] >= 1.0, (name, row["speedup_rebind"])
    if baseline is not None:
        # Ratio-vs-ratio: both numbers are same-machine, same-process
        # wall-time ratios, so the comparison is machine-independent.
        old = baseline.get("headline", {}).get("geomean_speedup_single")
        if old:
            assert h["geomean_speedup_single"] >= REGRESSION_RATIO * old, (
                f"compiled-executor speedup regressed by more than "
                f"{(1 - REGRESSION_RATIO):.0%}: "
                f"{h['geomean_speedup_single']:.2f}x now vs {old:.2f}x committed"
            )


def _load_baseline() -> dict | None:
    if BENCH_JSON.exists():
        try:
            return json.loads(BENCH_JSON.read_text())
        except Exception:
            return None
    return None


def test_core_solve(benchmark):
    baseline = _load_baseline()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("core_solve", render(result))


if __name__ == "__main__":
    baseline = _load_baseline()
    result = run()
    check(result, baseline)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {BENCH_JSON}")

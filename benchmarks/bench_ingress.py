"""Async ingress under overload: EDF + shedding vs the FIFO baseline.

Replays one seeded synthetic trace — diurnal + bursty Poisson arrivals
at ~2x the service's deterministic capacity, a latency-sensitive
``gold`` tenant on the ``interactive`` class riding alongside four
equal-weight ``batch``-class tenants — through two fronts over
identical backends:

* the :class:`~repro.serve.ingress.AsyncSolveService` (priority
  classes, earliest-deadline-first dispatch, load shedding with
  per-tenant fairness), and
* the plain thread-pool :class:`~repro.serve.service.SolveService`
  (one FIFO queue, same per-request deadlines, overflow rejection as
  its only relief valve).

Capacity is pinned by a :class:`~repro.validate.faults.FaultInjector`
solve delay, so "2x overload" means the same thing on every machine.

Acceptance gates:

* gold-class p99 wall latency under the ingress beats FIFO by
  >= ``P99_FLOOR``x,
* absolute shed-rate spread across the four equal-weight batch tenants
  <= ``FAIRNESS_SPREAD_CEIL``,
* zero admission-permit leaks in either backend once drained.

Writes ``BENCH_ingress.json`` at the repository root (and the rendered
table to ``benchmarks/results/``).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import numpy as np

from repro.serve.ingress import AsyncSolveService, IngressConfig, PriorityClass
from repro.serve.service import ServiceConfig, SolveService
from repro.serve.traffic import TrafficSpec, generate_traffic, replay_async, replay_fifo
from repro.serve.workload import mixed_workload
from repro.validate.faults import FaultInjector

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_ingress.json"

#: injected per-solve service time — pins capacity machine-independently
SERVICE_DELAY_S = 0.02
WORKERS = 2
#: deterministic backend capacity, requests/second
CAPACITY_RPS = WORKERS / SERVICE_DELAY_S
#: offered load multiple of capacity (the overload the gates run at)
OVERLOAD = 2.0

DURATION_S = 4.0
GOLD_DEADLINE_S = 0.30
BATCH_DEADLINE_S = 0.60
BATCH_TENANTS = ("acme", "bolt", "crux", "dyne")
SEED = 42

#: acceptance floor: FIFO gold p99 / ingress gold p99
P99_FLOOR = 1.5
#: acceptance ceiling: max - min shed rate across the batch tenants
FAIRNESS_SPREAD_CEIL = 0.10

CLASSES = (
    PriorityClass("interactive", rank=0, queue_limit=64,
                  deadline_s=GOLD_DEADLINE_S),
    PriorityClass("batch", rank=1, queue_limit=64,
                  deadline_s=BATCH_DEADLINE_S),
)
DEADLINES = {"interactive": GOLD_DEADLINE_S, "batch": BATCH_DEADLINE_S}


def _trace(matrices: list[str]) -> list:
    spec = TrafficSpec(
        duration_s=DURATION_S,
        base_rate=CAPACITY_RPS * OVERLOAD,
        diurnal_amplitude=0.3,
        diurnal_period_s=1.5,
        burst_rate=CAPACITY_RPS * OVERLOAD * 0.5,
        burst_every_s=0.4,
        burst_duration_s=0.1,
        hot_key_skew=1.0,
        tenants=("gold",) + BATCH_TENANTS,
        tenant_weights=(1, 1, 1, 1, 1),
        tenant_classes=("interactive",) + ("batch",) * len(BATCH_TENANTS),
        seed=SEED,
    )
    return generate_traffic(spec, matrices)


def _backend() -> SolveService:
    return SolveService(
        ServiceConfig(max_workers=WORKERS, cache_capacity=8),
        fault_injector=FaultInjector(solve_delay_s=SERVICE_DELAY_S),
    )


def _warm(svc: SolveService, matrices: dict) -> None:
    # Build every plan before the clock starts: the trace measures
    # queueing policy, not preprocessing.
    for A in matrices.values():
        svc.solve(A, np.ones(A.n_rows))


def run() -> dict:
    pool = mixed_workload(4, scale=0.05, n_matrices=4, seed=SEED).matrices
    trace = _trace(list(pool))

    # --- EDF + shedding ingress ------------------------------------
    svc_edf = _backend()
    _warm(svc_edf, pool)

    async def edf_run():
        async with AsyncSolveService(
            svc_edf,
            config=IngressConfig(
                classes=CLASSES, default_class="batch", backpressure_s=0.02,
            ),
        ) as ingress:
            report = await replay_async(ingress, pool, trace)
            return report, ingress.stats()

    edf_report, edf_stats = asyncio.run(edf_run())
    edf_leak = svc_edf.config.queue_limit - svc_edf.admission_available
    svc_edf.close()

    # --- FIFO baseline ----------------------------------------------
    svc_fifo = _backend()
    _warm(svc_fifo, pool)
    fifo_report = replay_fifo(svc_fifo, pool, trace, deadlines=DEADLINES)
    fifo_leak = svc_fifo.config.queue_limit - svc_fifo.admission_available
    svc_fifo.close()

    gold_edf_p99 = edf_report.percentile(99, tenant="gold")
    gold_fifo_p99 = fifo_report.percentile(99, tenant="gold")
    spread = edf_stats.shed_rate_spread(list(BATCH_TENANTS))

    return {
        "trace": {
            "arrivals": len(trace),
            "duration_s": DURATION_S,
            "capacity_rps": CAPACITY_RPS,
            "offered_over_capacity": len(trace) / DURATION_S / CAPACITY_RPS,
            "service_delay_s": SERVICE_DELAY_S,
            "workers": WORKERS,
            "seed": SEED,
        },
        "edf": {
            "outcomes": edf_report.outcomes(),
            "gold_p99_s": gold_edf_p99,
            "gold_p50_s": edf_report.percentile(50, tenant="gold"),
            "gold_ok": len(edf_report.latencies(tenant="gold")),
            "batch_ok": len(edf_report.latencies(klass="batch")),
            "elapsed_s": edf_report.elapsed_s,
            "stats": edf_stats.as_dict(),
            "shed_rates": {
                t: edf_report.shed_rate(t) for t in ("gold",) + BATCH_TENANTS
            },
            "permit_leak": edf_leak,
        },
        "fifo": {
            "outcomes": fifo_report.outcomes(),
            "gold_p99_s": gold_fifo_p99,
            "gold_p50_s": fifo_report.percentile(50, tenant="gold"),
            "gold_ok": len(fifo_report.latencies(tenant="gold")),
            "batch_ok": len(fifo_report.latencies(klass="batch")),
            "elapsed_s": fifo_report.elapsed_s,
            "permit_leak": fifo_leak,
        },
        "gold_p99_speedup": gold_fifo_p99 / gold_edf_p99,
        "batch_shed_spread": spread,
        "p99_floor": P99_FLOOR,
        "fairness_spread_ceil": FAIRNESS_SPREAD_CEIL,
    }


def render(result: dict) -> str:
    t = result["trace"]
    e, f = result["edf"], result["fifo"]
    lines = [
        "async ingress under overload (EDF + shedding vs FIFO baseline)",
        f"  trace: {t['arrivals']} arrivals over {t['duration_s']}s = "
        f"{t['offered_over_capacity']:.2f}x capacity "
        f"({t['capacity_rps']:.0f} req/s, {t['workers']} workers x "
        f"{t['service_delay_s'] * 1e3:.0f} ms)",
        f"  gold p99: ingress {e['gold_p99_s'] * 1e3:8.2f} ms   "
        f"fifo {f['gold_p99_s'] * 1e3:8.2f} ms   "
        f"speedup {result['gold_p99_speedup']:.2f}x "
        f"(acceptance: >= {result['p99_floor']}x)",
        f"  gold served: ingress {e['gold_ok']}   fifo {f['gold_ok']}",
        f"  batch served: ingress {e['batch_ok']}   fifo {f['batch_ok']}",
        f"  ingress outcomes: {e['outcomes']}",
        f"  fifo outcomes: {f['outcomes']}",
        f"  batch shed rates: "
        + ", ".join(
            f"{k} {v:.1%}" for k, v in e["shed_rates"].items() if k != "gold"
        ),
        f"  shed spread {result['batch_shed_spread']:.3f} "
        f"(acceptance: <= {result['fairness_spread_ceil']})",
        f"  permit leaks at drain: ingress {e['permit_leak']}, "
        f"fifo {f['permit_leak']} (acceptance: 0)",
    ]
    return "\n".join(lines)


def check(result: dict) -> None:
    e, f = result["edf"], result["fifo"]
    # The headline: priority + EDF + shedding protects the gold class.
    assert result["gold_p99_speedup"] >= P99_FLOOR, result["gold_p99_speedup"]
    # Shedding is fair: equal-weight tenants shed at equal rates.
    assert result["batch_shed_spread"] <= FAIRNESS_SPREAD_CEIL, (
        result["batch_shed_spread"]
    )
    # Overload actually happened and the ingress shed rather than queued.
    assert result["trace"]["offered_over_capacity"] >= 1.5, result["trace"]
    assert sum(
        v for k, v in e["outcomes"].items() if k.startswith("shed:")
    ) > 0, e["outcomes"]
    # Gold keeps flowing under the ingress.
    assert e["gold_ok"] > 0, e
    # Nothing leaked an admission permit.
    assert e["permit_leak"] == 0 and f["permit_leak"] == 0, (e, f)


def test_ingress_overload(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("ingress", render(result))


if __name__ == "__main__":
    result = run()
    check(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("ingress", render(result))
    print(f"wrote {BENCH_JSON}")

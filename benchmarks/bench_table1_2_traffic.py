"""Tables 1 & 2 — b-update / x-load traffic of the three block schemes."""

from repro.experiments import table1_2

from conftest import publish


def test_tables_1_and_2(benchmark):
    res = benchmark.pedantic(
        lambda: table1_2.run(n=64, parts=(4, 16)), rounds=1, iterations=1
    )
    text = table1_2.render(res)
    publish("table1_2_traffic", text)
    # Formula == measurement, exactly, for every scheme and part count.
    from repro.analysis.traffic import PARTS_GRID

    for m in res.measured_b:
        for p in res.parts:
            idx = PARTS_GRID.index(p)
            assert res.measured_b[m][p] == res.formula_b[m][idx]
            assert res.measured_x[m][p] == res.formula_x[m][idx]

"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper: it runs the
corresponding ``repro.experiments`` module once inside pytest-benchmark
(wall time of the harness is what's measured; the *simulated* device
times are the scientific output) and writes the rendered rows to
``benchmarks/results/<name>.txt`` while also printing them.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)

"""Figure 4 — SpMV-part time of the three block algorithms vs #parts."""

from repro.experiments import fig4

from conftest import publish


def test_figure4(benchmark):
    res = benchmark.pedantic(lambda: fig4.run(scale=1.0), rounds=1, iterations=1)
    publish("fig4_spmv_blocks", fig4.render(res))
    # Shape assertions: at the largest part count the column scheme's SpMV
    # cost is the worst and the recursive scheme is never the worst.
    for name in res.matrices:
        series = res.spmv_ms[name]
        last = {m: series[m][-1] for m in series}
        assert max(last, key=last.get) == "column-block", name
        assert last["recursive-block"] <= last["column-block"], name

"""Figure 6 — suite-wide GFlops and speedups on both GPUs (the headline)."""

from repro.analysis.metrics import geometric_mean, speedup_summary
from repro.experiments import fig6
from repro.gpu.device import TITAN_RTX, TITAN_X

from conftest import publish


def test_figure6(benchmark):
    header = (
        f"Table 3 devices: (1) {TITAN_X}; (2) {TITAN_RTX}; both simulated at "
        "1/50 dataset scale (see DESIGN.md)."
    )
    res = benchmark.pedantic(lambda: fig6.run(scale=0.5), rounds=1, iterations=1)
    publish("fig6_performance", header + "\n\n" + fig6.render(res))
    for dev in ("titan_x", "titan_rtx"):
        vs_cusp = speedup_summary(res.speedups(dev, "cusparse").values())
        vs_sync = speedup_summary(res.speedups(dev, "syncfree").values())
        # Paper: 4.72x / 9.95x average, never much slower than baselines.
        assert vs_cusp["mean"] > 1.5
        assert vs_sync["mean"] > 2.0
        assert vs_cusp["min"] > 0.5
        assert vs_sync["min"] > 0.8
        assert vs_cusp["max"] > 10  # the mawi-class collapse
    # Paper: Titan RTX ~40% faster than Titan X overall.
    ratios = [
        res.results["titan_rtx"][m]["recursive-block"].gflops
        / res.results["titan_x"][m]["recursive-block"].gflops
        for m in res.results["titan_x"]
    ]
    assert 1.1 < geometric_mean(ratios) < 1.8

"""Table 5 — preprocessing cost and 100/500/1000-iteration amortization."""

from repro.experiments import table5

from conftest import publish


def test_table5(benchmark):
    res = benchmark.pedantic(lambda: table5.run(scale=0.5), rounds=1, iterations=1)
    publish("table5_preprocessing", table5.render(res))
    blk = res.averages["recursive-block"]
    cusp = res.averages["cusparse"]
    sync = res.averages["syncfree"]
    # Sync-free preprocessing is by far the cheapest (paper: 2.34ms).
    assert sync["pre_ms"] < cusp["pre_ms"] / 3
    assert sync["pre_ms"] < blk["pre_ms"] / 3
    # Block preprocessing is moderate: single-digit-x of one of its own
    # solves (paper: 9.16x).
    ratio = blk["pre_ms"] / blk["solve_ms"]
    assert 2 < ratio < 40, ratio
    # And the block algorithm wins every amortized horizon (paper: ~8x at
    # 1000 iterations).
    for iters in (100, 500, 1000):
        assert blk["overall_ms"][iters] < cusp["overall_ms"][iters]
        assert blk["overall_ms"][iters] < sync["overall_ms"][iters]

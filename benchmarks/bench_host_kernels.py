"""Host-side microbenchmarks (genuine wall-clock, not simulated time).

These measure the *Python implementation's* throughput — the numbers that
matter for anyone using this package as a CPU reference implementation:
level-schedule construction, the vectorized level sweep, format
conversion, and blocked preprocessing.
"""

import numpy as np
import pytest

from repro.core.blocked_matrix import build_improved_recursive_plan
from repro.gpu.device import TITAN_RTX_SCALED
from repro.kernels import prepare_lower
from repro.kernels.sweep import build_level_schedule, sweep_solve
from repro.matrices.generators import layered_random

DEV = TITAN_RTX_SCALED


@pytest.fixture(scope="module")
def big_system():
    L = layered_random(
        np.full(40, 1000, dtype=np.int64),
        nnz_per_row=8.0,
        rng=np.random.default_rng(0),
        locality=0.05,
    )
    return L, np.ones(L.n_rows)


def test_level_schedule_build(benchmark, big_system):
    L, _ = big_system
    prep = prepare_lower(L)
    sched = benchmark(lambda: build_level_schedule(prep))
    assert sched.n == L.n_rows


def test_sweep_solve_throughput(benchmark, big_system):
    L, b = big_system
    sched = build_level_schedule(prepare_lower(L))
    x = benchmark(lambda: sweep_solve(sched, b))
    assert np.allclose(L.matvec(x), b, atol=1e-8)


def test_csr_to_csc_conversion(benchmark, big_system):
    L, _ = big_system
    C = benchmark(L.to_csc)
    assert C.nnz == L.nnz


def test_blocked_preprocessing_wall_time(benchmark, big_system):
    L, _ = big_system
    blocked = benchmark.pedantic(
        lambda: build_improved_recursive_plan(L, 3, DEV), rounds=1, iterations=1
    )
    assert blocked.plan.n_tri_segments == 8


def test_full_prepared_solve_wall_time(benchmark, big_system):
    from repro.core.solver import RecursiveBlockSolver

    L, b = big_system
    prepared = RecursiveBlockSolver(device=DEV).prepare(L)
    x, _ = benchmark(lambda: prepared.solve(b))
    assert np.allclose(L.matvec(x), b, atol=1e-8)

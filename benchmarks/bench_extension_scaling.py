"""Extension: block advantage vs problem size (beyond the paper)."""

from repro.experiments import scaling

from conftest import publish


def test_scaling_study(benchmark):
    res = benchmark.pedantic(lambda: scaling.run(), rounds=1, iterations=1)
    publish("extension_scaling", scaling.render(res))
    blk = res.gflops["recursive-block"]
    cusp = res.gflops["cusparse"]
    ratios = [b / c for b, c in zip(blk, cusp)]
    # The advantage at the largest size exceeds the advantage at the
    # smallest (the locality argument of §2.2).
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.1

"""Serving-layer throughput: plan-cache amortization over a mixed workload.

Replays the repeated-matrix traffic the paper's Table 5 economics argue
for — a tour that builds every plan once (misses + evictions), a hot
phase that reuses cached plans (hits), a coalesced same-matrix batch,
and a failing planner that degrades to the level-set baseline — and
checks that cache-hit requests skip preprocessing entirely: hit-path
mean simulated latency must be under 50% of the miss-path mean.

A second phase replays same-pattern/different-values traffic (the
structural-batching case) through two fresh services — one with
``structural_batching`` on, one with it off — and gates the fused
service at >= ``FUSED_FLOOR`` the legacy wall-clock throughput, with
fused batch results bit-identical to per-request solves.

A third phase measures cold-start economics for the disk-backed
``PlanStore`` warm tier: a fresh process restarting against a
pre-warmed store must reach steady-state latency >=
``COLD_START_FLOOR`` times faster than one starting from an empty
store, with zero full pattern builds and solutions bit-identical to
the freshly built ones.

Writes ``BENCH_serve.json`` at the repository root (and the rendered
table to ``benchmarks/results/``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import TITAN_RTX_SCALED, register_solver, unregister_solver
from repro.core.solver import TriangularSolver
from repro.serve import ServiceConfig, SolveRequest, SolveService
from repro.serve.workload import mixed_workload, replay, revalued_workload

from conftest import publish

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

N_MATRICES = 6
CACHE_CAPACITY = 4
HOT_MATRICES = 3
HOT_REQUESTS = 24
BATCH_REQUESTS = 8

# Structural-batching phase: same-pattern/different-values traffic.
# Every request is a distinct values variant (the re-factorization
# stream): the legacy path must plan each one, the structural path
# plans once per pattern and rebinds.
FUSED_PATTERNS = 3
FUSED_VALUES = 6
FUSED_REQUESTS = FUSED_PATTERNS * FUSED_VALUES
FUSED_BATCH = FUSED_REQUESTS
FUSED_REPEATS = 3
#: acceptance floor: fused service wall-clock speedup over the
#: structural_batching=False ablation on the revalued workload
FUSED_FLOOR = 2.0

# Plan-store warm-tier phase: cold-start-to-steady-state ramp with an
# empty store vs the same workload restarted against a pre-warmed one.
STORE_MATRICES = 5
STORE_STEADY_ROUNDS = 10
STORE_REPEATS = 3
#: acceptance floor: warm-store restart must reach steady state this
#: many times faster than an empty-store cold start
COLD_START_FLOOR = 5.0


class _ExplodingSolver(TriangularSolver):
    """A planner that always fails: exercises graceful degradation."""

    method = "exploding"

    def _prepare(self, L):
        raise RuntimeError("planner exploded (benchmark-injected failure)")


def _fused_service(structural: bool) -> SolveService:
    # Capacity holds every variant (legacy mode keys on full fingerprint)
    # so the comparison measures plan-build cost, not eviction thrash.
    return SolveService(ServiceConfig(
        method="recursive-block",
        device=TITAN_RTX_SCALED,
        cache_capacity=FUSED_PATTERNS * FUSED_VALUES + 1,
        max_workers=4,
        structural_batching=structural,
    ))


def fused_phase() -> dict:
    """Fused (structural) vs legacy replay of the revalued workload."""
    workload = revalued_workload(
        FUSED_REQUESTS,
        scale=0.05,
        n_patterns=FUSED_PATTERNS,
        n_values=FUSED_VALUES,
        seed=13,
    )

    def timed_replay(structural: bool) -> tuple[float, SolveService]:
        best, svc = float("inf"), None
        for _ in range(FUSED_REPEATS):
            with _fused_service(structural) as s:
                t0 = time.perf_counter()
                replay(s, workload, batch_size=FUSED_BATCH)
                elapsed = time.perf_counter() - t0
            if elapsed < best:
                best, svc = elapsed, s
        return best, svc

    legacy_s, _ = timed_replay(structural=False)
    fused_s, fused_svc = timed_replay(structural=True)
    stats = fused_svc.stats()

    # Bit-identity: a fused same-pattern batch must match per-request
    # solves through the same (warm) service, bit for bit.
    with _fused_service(structural=True) as svc:
        variants = [
            workload.matrices[name]
            for name in list(workload.matrices)[:FUSED_VALUES]
        ]
        b = np.ones(variants[0].n_rows)
        singles = [svc.solve(V, b) for V in variants]  # warm every overlay
        batch = svc.solve_batch([SolveRequest(A=V, b=b) for V in variants])
        assert len(batch.buckets) == 1 and batch.buckets[0].fused
        for single, fused in zip(singles, batch):
            assert np.array_equal(np.asarray(fused.x), np.asarray(single.x))

    return {
        "patterns": FUSED_PATTERNS,
        "values_per_pattern": FUSED_VALUES,
        "requests": FUSED_REQUESTS,
        "batch_size": FUSED_BATCH,
        "legacy_s": legacy_s,
        "fused_s": fused_s,
        "speedup": legacy_s / fused_s,
        "pattern_hits": stats.pattern_hits,
        "fused_requests": stats.fused_requests,
        "fused_floor": FUSED_FLOOR,
        "bit_identical": True,
    }


def _store_service(store_path: str) -> SolveService:
    return SolveService(ServiceConfig(
        method="recursive-block",
        device=TITAN_RTX_SCALED,
        cache_capacity=STORE_MATRICES + 1,
        max_workers=4,
        store_path=store_path,
    ))


def store_phase() -> dict:
    """Cold-start ramp with an empty PlanStore vs a pre-warmed one.

    The "cold start" is the first tour over every distinct matrix —
    the window during which a restarted service pays preprocessing
    before latency settles to the cached steady state.  With a warm
    store the tour deserializes plans instead of building them.
    """
    workload = mixed_workload(
        STORE_MATRICES, scale=0.1, n_matrices=STORE_MATRICES, seed=23
    )
    mats = list(workload.matrices.values())
    rhs = [np.ones(A.n_rows) for A in mats]

    def ramp(store_dir: str) -> tuple[float, float, list, object]:
        """One fresh process-equivalent: new service, tour, steady window."""
        with _store_service(store_dir) as svc:
            t0 = time.perf_counter()
            xs = [np.asarray(svc.solve(A, b).x) for A, b in zip(mats, rhs)]
            ramp_s = time.perf_counter() - t0
            lat = []
            for _ in range(STORE_STEADY_ROUNDS):
                for A, b in zip(mats, rhs):
                    t1 = time.perf_counter()
                    svc.solve(A, b)
                    lat.append(time.perf_counter() - t1)
            stats = svc.stats()
        p99 = float(np.percentile(np.asarray(lat), 99))
        return ramp_s, p99, xs, stats

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        # Empty-store cold starts: each repeat gets a pristine directory
        # (a populated store would turn later repeats into warm starts).
        cold_runs = [
            ramp(str(Path(root) / f"cold{i}")) for i in range(STORE_REPEATS)
        ]
        cold_s = min(r[0] for r in cold_runs)
        cold_p99 = min(r[1] for r in cold_runs)
        # Warm restarts all replay the store the *first* cold run wrote,
        # so bit-identity is judged against that run's solutions (cold
        # repeats may legitimately differ in engine keep/drop verdicts —
        # a timed decision — which the store pins per written entry).
        _, _, cold_xs, cold_stats = cold_runs[0]
        warm_dir = str(Path(root) / "cold0")
        warm_runs = [ramp(warm_dir) for _ in range(STORE_REPEATS)]
        warm_s = min(r[0] for r in warm_runs)
        warm_p99 = min(r[1] for r in warm_runs)
        _, _, warm_xs, warm_stats = warm_runs[0]

    bit_identical = all(
        np.array_equal(c, w) for c, w in zip(cold_xs, warm_xs)
    )
    return {
        "matrices": STORE_MATRICES,
        "steady_rounds": STORE_STEADY_ROUNDS,
        "cold_start_empty_s": cold_s,
        "cold_start_warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "steady_p99_empty_s": cold_p99,
        "steady_p99_warm_s": warm_p99,
        "pattern_builds_empty": cold_stats.pattern_builds,
        "pattern_builds_warm": warm_stats.pattern_builds,
        "store_hits_warm": warm_stats.store_hits,
        "store": warm_stats.store.as_dict() if warm_stats.store else None,
        "bit_identical": bit_identical,
        "cold_start_floor": COLD_START_FLOOR,
    }


def run() -> dict:
    workload = mixed_workload(
        N_MATRICES + HOT_REQUESTS,
        scale=0.05,
        n_matrices=N_MATRICES,
        hot_matrices=HOT_MATRICES,
        seed=7,
    )
    config = ServiceConfig(
        method="recursive-block",
        device=TITAN_RTX_SCALED,
        cache_capacity=CACHE_CAPACITY,
        max_workers=4,
    )
    register_solver("exploding", _ExplodingSolver, replace=True)
    try:
        with SolveService(config) as service:
            # Phase 1+2 — tour then hot set, sequentially so the LRU
            # eviction sequence is deterministic.
            for name, b in workload.stream:
                service.solve(workload.matrices[name], b)
            # Phase 3 — a coalesced batch on the hottest matrix.
            hot_name = workload.stream[-1][0]
            hot = workload.matrices[hot_name]
            rng = np.random.default_rng(11)
            batch = [
                SolveRequest(A=hot, b=rng.standard_normal(hot.n_rows))
                for _ in range(BATCH_REQUESTS)
            ]
            for req, res in zip(batch, service.solve_batch(batch)):
                resid = float(np.abs(hot.matvec(np.asarray(res.x)) - req.b).max())
                assert resid < 1e-8, resid
            # Phase 4 — a method whose planner fails, twice: first builds
            # and caches the level-set fallback plan, second hits it.
            small_name = workload.stream[0][0]
            small = workload.matrices[small_name]
            for _ in range(2):
                res = service.solve(small, np.ones(small.n_rows), method="exploding")
                assert res.fallback and res.method == "levelset"
            stats = service.stats()
            records = [r.as_dict() for r in service.records()]
    finally:
        unregister_solver("exploding")

    hit_mean = stats.hit_mean_latency_s
    miss_mean = stats.miss_mean_latency_s
    result = {
        "workload": {
            "n_matrices": N_MATRICES,
            "cache_capacity": CACHE_CAPACITY,
            "hot_matrices": HOT_MATRICES,
            "hot_requests": HOT_REQUESTS,
            "coalesced_batch": BATCH_REQUESTS,
            "fallback_requests": 2,
            "matrices": {
                name: {"n": A.n_rows, "nnz": A.nnz}
                for name, A in workload.matrices.items()
            },
        },
        "stats": stats.as_dict(),
        "hit_mean_latency_s": hit_mean,
        "miss_mean_latency_s": miss_mean,
        "hit_over_miss_latency": hit_mean / miss_mean if miss_mean else None,
        "records": records,
        "fused": fused_phase(),
        "store": store_phase(),
    }
    return result


def profile_capture(result: dict) -> None:
    """Re-solve the largest workload matrix with observability on and
    attach its per-segment profile to the result.

    Runs *after* the timed benchmark — the timed path keeps
    observability disabled (that disabled path has its own < 3 %
    overhead acceptance bar).
    """
    from repro import Observability, solve_triangular
    from repro.analysis.inspect import render_profile

    matrices = result["workload"]["matrices"]
    name = max(matrices, key=lambda k: matrices[k]["nnz"])
    workload = mixed_workload(
        N_MATRICES, scale=0.05, n_matrices=N_MATRICES, seed=7
    )
    A = workload.matrices[name]
    obs = Observability()
    res = solve_triangular(
        A, np.ones(A.n_rows), method="recursive-block",
        device=TITAN_RTX_SCALED, trace=obs,
    )
    result["profile"] = {
        "matrix": name,
        "segments": res.report.profile,
        "rendered": render_profile(res.report),
        "kernel_launches": {
            s["labels"]["kernel"]: s["value"]
            for s in obs.metrics_dict()["repro_kernel_launches_total"]["samples"]
        },
    }


def render(result: dict) -> str:
    s = result["stats"]
    lines = [
        "serve throughput (plan-caching SolveService, recursive-block)",
        f"  requests {s['requests']}  hits {s['cache_hits']}  "
        f"misses {s['cache_misses']}  evictions {s['evictions']}  "
        f"fallbacks {s['fallbacks']}  coalesced {s['coalesced_requests']}",
        f"  miss-path mean latency {result['miss_mean_latency_s'] * 1e3:9.4f} ms "
        "(pays preprocessing)",
        f"  hit-path  mean latency {result['hit_mean_latency_s'] * 1e3:9.4f} ms "
        "(plan reused)",
        f"  hit/miss latency ratio {result['hit_over_miss_latency']:.3f} "
        "(acceptance: < 0.5)",
    ]
    f = result.get("fused")
    if f:
        lines.append(
            f"  structural batching: {f['requests']} requests over "
            f"{f['patterns']} patterns x {f['values_per_pattern']} values, "
            f"batch={f['batch_size']}"
        )
        lines.append(
            f"    legacy {f['legacy_s'] * 1e3:9.2f} ms   "
            f"fused {f['fused_s'] * 1e3:9.2f} ms   "
            f"speedup {f['speedup']:.2f}x (acceptance: >= {f['fused_floor']}x)"
        )
        lines.append(
            f"    pattern hits {f['pattern_hits']}  "
            f"fused requests {f['fused_requests']}  "
            f"bit-identical to per-request: {f['bit_identical']}"
        )
    st = result.get("store")
    if st:
        lines.append(
            f"  plan-store warm tier: {st['matrices']} matrices, "
            f"{st['steady_rounds']} steady rounds"
        )
        lines.append(
            f"    cold start (empty store) {st['cold_start_empty_s'] * 1e3:9.2f} ms   "
            f"warm restart {st['cold_start_warm_s'] * 1e3:9.2f} ms   "
            f"speedup {st['speedup']:.2f}x (acceptance: >= {st['cold_start_floor']}x)"
        )
        lines.append(
            f"    warm restart pattern builds {st['pattern_builds_warm']} "
            f"(acceptance: 0)  store hits {st['store_hits_warm']}  "
            f"bit-identical to fresh builds: {st['bit_identical']}"
        )
    if "profile" in result:
        lines.append(f"  per-segment profile of {result['profile']['matrix']} "
                     "(captured untimed, observability on):")
        lines.extend("    " + ln
                     for ln in result["profile"]["rendered"].splitlines())
    return "\n".join(lines)


def check(result: dict) -> None:
    s = result["stats"]
    total = N_MATRICES + HOT_REQUESTS + BATCH_REQUESTS + 2
    assert s["requests"] == total, s
    # One miss per distinct plan: 6 toured matrices + 1 fallback plan.
    assert s["cache_misses"] == N_MATRICES + 1, s
    assert s["cache_hits"] == total - s["cache_misses"], s
    # The tour inserts 6 plans into 4 slots (+1 later for the fallback
    # plan, which evicts another): 2 + 1 evictions.
    assert s["evictions"] == (N_MATRICES - CACHE_CAPACITY) + 1, s
    assert s["fallbacks"] == 2, s
    assert s["coalesced_requests"] == BATCH_REQUESTS, s
    assert s["failed"] == 0 and s["timeouts"] == 0, s
    # The headline: cached plans skip preprocessing entirely.
    assert result["hit_over_miss_latency"] < 0.5, result["hit_over_miss_latency"]
    # Structural-batching phase: fused throughput and pattern reuse.
    f = result["fused"]
    assert f["speedup"] >= FUSED_FLOOR, f
    assert f["bit_identical"], f
    # Every request after the first of its pattern rebinds the cached
    # pattern plan instead of rebuilding it.
    assert f["pattern_hits"] >= FUSED_REQUESTS - FUSED_PATTERNS, f
    assert f["fused_requests"] > 0, f
    # Plan-store phase: warm restart skips every pattern build, loads
    # plans that solve bit-identically, and amortizes the cold start.
    st = result["store"]
    assert st["pattern_builds_empty"] == STORE_MATRICES, st
    assert st["pattern_builds_warm"] == 0, st
    assert st["store_hits_warm"] == STORE_MATRICES, st
    assert st["bit_identical"], st
    assert st["speedup"] >= COLD_START_FLOOR, st


def test_serve_throughput(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    check(result)
    profile_capture(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    publish("serve_throughput", render(result))


if __name__ == "__main__":
    result = run()
    check(result)
    profile_capture(result)
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {BENCH_JSON}")

"""Extension: fused multi-RHS amortization sweep (beyond the paper)."""

from repro.experiments import multirhs

from conftest import publish


def test_multirhs_amortization(benchmark):
    res = benchmark.pedantic(lambda: multirhs.run(), rounds=1, iterations=1)
    publish("extension_multirhs", multirhs.render(res))
    for method, series in res.per_rhs_ms.items():
        # Per-RHS time must be non-increasing in the block width.
        assert series[-1] <= series[0] * 1.001, method
    # Level-scheduled methods amortize their per-level overheads strongly;
    # Sync-free amortizes only its fixed warp costs (its per-edge atomics
    # scale with the RHS count), so its curve is much flatter.
    assert res.per_rhs_ms["cusparse"][0] / res.per_rhs_ms["cusparse"][-1] > 3
    assert (
        res.per_rhs_ms["recursive-block"][0]
        / res.per_rhs_ms["recursive-block"][-1]
        > 3
    )

"""Figure 5 — the calibration sweep, heatmaps, and derived thresholds."""

from repro.experiments import fig5

from conftest import publish


def test_figure5(benchmark):
    res = benchmark.pedantic(lambda: fig5.run(n_rows=4096), rounds=1, iterations=1)
    publish("fig5_selection", fig5.render(res))
    cal = res.calibration
    # Qualitative Figure 5(a) structure: level-set shallow, cuSPARSE deep.
    shallow_ls = sum(
        cal.best_sptrsv((nr, nl)) == "levelset"
        for (nr, nl) in cal.sptrsv
        if nl <= 4
    )
    shallow_total = sum(1 for (nr, nl) in cal.sptrsv if nl <= 4)
    assert shallow_ls > shallow_total / 2
    deep_cu = sum(
        cal.best_sptrsv((nr, nl)) == "cusparse"
        for (nr, nl) in cal.sptrsv
        if nl >= 256 and nr >= 3
    )
    deep_total = sum(1 for (nr, nl) in cal.sptrsv if nl >= 256 and nr >= 3)
    assert deep_cu > deep_total * 0.7
    # Figure 5(b): DCSR wins the mostly-empty side.
    empty_dcsr = sum(
        cal.best_spmv((nr, er)).endswith("dcsr")
        for (nr, er) in cal.spmv
        if er >= 0.8
    )
    empty_total = sum(1 for (nr, er) in cal.spmv if er >= 0.8)
    assert empty_dcsr > empty_total * 0.7

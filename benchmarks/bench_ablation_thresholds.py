"""Ablation: calibrated thresholds vs the paper's printed Algorithm 7.

The paper's thresholds encode *their* kernels' crossovers on *their*
hardware; ours encode the simulated kernels' (EXPERIMENTS.md, Figure 5
section).  This ablation quantifies what running the printed numbers
verbatim costs against the calibrated defaults — the cost of skipping
the calibration step the paper insists on.
"""

import numpy as np

from repro.analysis.metrics import geometric_mean
from repro.core.adaptive import CALIBRATED_THRESHOLDS, PAPER_THRESHOLDS
from repro.core.solver import RecursiveBlockSolver
from repro.gpu.device import TITAN_RTX_SCALED
from repro.matrices.suite import scaled_suite

from conftest import publish

DEV = TITAN_RTX_SCALED


def test_ablation_thresholds(benchmark):
    specs = scaled_suite(0.35)

    def run():
        rows = []
        for spec in specs:
            L = spec.build()
            b = np.ones(L.n_rows)
            times = {}
            for label, th in (
                ("calibrated", CALIBRATED_THRESHOLDS),
                ("paper", PAPER_THRESHOLDS),
            ):
                prepared = RecursiveBlockSolver(device=DEV, thresholds=th).prepare(L)
                _, rep = prepared.solve(b)
                times[label] = rep.time_s
            rows.append((spec.name, times["calibrated"], times["paper"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: Algorithm 7 thresholds — calibrated (ours) vs printed "
        "(paper's hardware)",
        f"  {'matrix':24s} {'calibrated':>12s} {'paper':>12s} {'paper/cal':>10s}",
    ]
    ratios = []
    for name, cal, paper in rows:
        ratios.append(paper / cal)
        lines.append(
            f"  {name:24s} {cal*1e3:10.3f}ms {paper*1e3:10.3f}ms "
            f"{paper / cal:9.2f}x"
        )
    g = geometric_mean(ratios)
    lines.append(f"  gmean paper/calibrated: {g:.2f}x")
    lines.append(
        "reading: >1 means the printed thresholds mis-route sub-matrices "
        "on our kernels — calibration to the executing hardware matters, "
        "exactly the paper's §3.4 argument."
    )
    publish("ablation_thresholds", "\n".join(lines))
    # Calibrated defaults must win or tie overall, and never lose badly.
    assert g >= 0.98
    assert min(ratios) > 0.5

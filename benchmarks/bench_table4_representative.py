"""Table 4 — the six representative matrices in detail."""

from repro.experiments import table4

from conftest import publish


def test_table4(benchmark):
    res = benchmark.pedantic(lambda: table4.run(scale=1.0), rounds=1, iterations=1)
    publish("table4_representative", table4.render(res))

    def gf(name, method):
        return res.rows[name][1][method].gflops

    # The orderings that carry the paper's Table 4 story:
    # high-parallelism matrices: block fastest.
    for name in ("nlpkkt200_like", "kkt_power_like"):
        assert gf(name, "recursive-block") > gf(name, "cusparse")
        assert gf(name, "recursive-block") > gf(name, "syncfree")
    # mawi: cuSPARSE collapses on hypersparse rows (paper 72x).
    assert gf("mawi_like", "recursive-block") > 10 * gf("mawi_like", "cusparse")
    # vas_stokes: Sync-free collapses on deep chains (paper 61x).
    assert gf("vas_stokes_like", "recursive-block") > 2 * gf(
        "vas_stokes_like", "syncfree"
    )
    # tmt_sym: near-serial, nobody wins big; block must stay comparable.
    assert gf("tmt_sym_like", "recursive-block") > 0.6 * gf("tmt_sym_like", "cusparse")
    # block is never catastrophically slower than the best baseline.
    for name, (stats, results, paper) in res.rows.items():
        best = max(gf(name, "cusparse"), gf(name, "syncfree"))
        assert gf(name, "recursive-block") > 0.5 * best, name
